package cmat

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestExpmZero(t *testing.T) {
	if !EqualTol(Expm(New(4, 4)), Identity(4), 1e-14) {
		t.Fatal("e^0 != I")
	}
}

func TestExpmDiagonal(t *testing.T) {
	a := New(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, complex(0, math.Pi))
	a.Set(2, 2, -2)
	e := Expm(a)
	want := []complex128{complex(math.E, 0), -1, complex(math.Exp(-2), 0)}
	for i, w := range want {
		if cmplx.Abs(e.At(i, i)-w) > 1e-12 {
			t.Fatalf("e^diag[%d] = %v, want %v", i, e.At(i, i), w)
		}
	}
	if !e.IsDiagonal(1e-12) {
		t.Fatal("exponential of diagonal not diagonal")
	}
}

func TestExpmAdditivityCommuting(t *testing.T) {
	// e^{A}e^{A} = e^{2A}.
	rng := rand.New(rand.NewSource(21))
	a := randomMatrix(rng, 4, 4)
	a = Scale(0.3, a)
	lhs := Mul(Expm(a), Expm(a))
	rhs := Expm(Scale(2, a))
	if !EqualTol(lhs, rhs, 1e-10) {
		t.Fatalf("additivity violated by %g", MaxAbsDiff(lhs, rhs))
	}
}

func TestExpmHermitianUnitary(t *testing.T) {
	// e^{iθH} is unitary for Hermitian H.
	rng := rand.New(rand.NewSource(22))
	m := randomMatrix(rng, 4, 4)
	h := Scale(0.5, Add(m, m.Dagger())) // Hermitian
	u := ExpmHermitian(h, 0.7)
	if !u.IsUnitary(1e-10) {
		t.Fatal("e^{iθH} not unitary")
	}
	// θ=0 gives the identity.
	if !EqualTol(ExpmHermitian(h, 0), Identity(4), 1e-14) {
		t.Fatal("e^{0} != I")
	}
}

func TestExpmPauliRotation(t *testing.T) {
	// e^{-iθX/2} matches the known RX matrix.
	x := FromSlice(2, 2, []complex128{0, 1, 1, 0})
	theta := 0.9
	u := Expm(Scale(complex(0, -theta/2), x))
	c := complex(math.Cos(theta/2), 0)
	s := complex(0, -math.Sin(theta/2))
	want := FromSlice(2, 2, []complex128{c, s, s, c})
	if !EqualTol(u, want, 1e-12) {
		t.Fatal("e^{-iθX/2} != RX(θ)")
	}
}
