package obs

import (
	"fmt"
	"strings"

	"hsfsim/internal/graph"
)

// Term is one weighted Pauli string of a Hamiltonian.
type Term struct {
	Coefficient float64
	Op          String
}

// Hamiltonian is a real-weighted sum of Pauli strings, H = Σ c_i P_i.
type Hamiltonian struct {
	NumQubits int
	Terms     []Term
}

// NewHamiltonian returns an empty Hamiltonian on n qubits.
func NewHamiltonian(n int) *Hamiltonian {
	return &Hamiltonian{NumQubits: n}
}

// Add appends a term given as a Pauli string literal like "IZZI".
func (h *Hamiltonian) Add(coefficient float64, pauli string) error {
	p, err := ParseString(pauli)
	if err != nil {
		return err
	}
	if len(p.Ops) != h.NumQubits {
		return fmt.Errorf("obs: term %q has %d qubits, Hamiltonian has %d", pauli, len(p.Ops), h.NumQubits)
	}
	h.Terms = append(h.Terms, Term{Coefficient: coefficient, Op: p})
	return nil
}

// Expectation computes <ψ|H|ψ> for a full statevector.
func (h *Hamiltonian) Expectation(amps []complex128) (float64, error) {
	var e float64
	for _, t := range h.Terms {
		v, err := Expectation(amps, t.Op)
		if err != nil {
			return 0, err
		}
		e += t.Coefficient * v
	}
	return e, nil
}

// IsDiagonal reports whether every term is I/Z-only, in which case the
// energy is computable from probabilities (and hence from the paper's
// partial-amplitude windows).
func (h *Hamiltonian) IsDiagonal() bool {
	for _, t := range h.Terms {
		if !t.Op.IsDiagonal() {
			return false
		}
	}
	return true
}

// DiagonalExpectation computes <H> from basis-state probabilities for
// diagonal Hamiltonians.
func (h *Hamiltonian) DiagonalExpectation(probs []float64) (float64, error) {
	if !h.IsDiagonal() {
		return 0, fmt.Errorf("obs: Hamiltonian has off-diagonal terms")
	}
	var e float64
	for _, t := range h.Terms {
		v, err := DiagonalExpectation(probs, t.Op)
		if err != nil {
			return 0, err
		}
		e += t.Coefficient * v
	}
	return e, nil
}

// String renders the Hamiltonian like "+1.00·ZZI -0.50·IXI".
func (h *Hamiltonian) String() string {
	var parts []string
	for _, t := range h.Terms {
		parts = append(parts, fmt.Sprintf("%+.2f·%s", t.Coefficient, t.Op.String()))
	}
	return strings.Join(parts, " ")
}

// TransverseIsing builds H = J Σ Z_iZ_{i+1} + hx Σ X_i on an n-site open
// chain — the Hamiltonian behind internal/trotter's Ising circuits.
func TransverseIsing(n int, j, hx float64, periodic bool) (*Hamiltonian, error) {
	if n < 2 {
		return nil, fmt.Errorf("obs: chain needs ≥ 2 sites")
	}
	h := NewHamiltonian(n)
	addZZ := func(a, b int) {
		ops := make([]Pauli, n)
		for i := range ops {
			ops[i] = I
		}
		ops[a], ops[b] = Z, Z
		h.Terms = append(h.Terms, Term{Coefficient: j, Op: String{Ops: ops}})
	}
	for i := 0; i+1 < n; i++ {
		addZZ(i, i+1)
	}
	if periodic && n > 2 {
		addZZ(0, n-1)
	}
	for q := 0; q < n; q++ {
		ops := make([]Pauli, n)
		for i := range ops {
			ops[i] = I
		}
		ops[q] = X
		h.Terms = append(h.Terms, Term{Coefficient: hx, Op: String{Ops: ops}})
	}
	return h, nil
}

// MaxCutHamiltonian builds the cost Hamiltonian C = Σ w_uv (1 - Z_uZ_v)/2
// whose expectation is the expected cut value; the constant part is
// returned separately so the operator stays a pure Pauli sum.
func MaxCutHamiltonian(g *graph.Graph) (*Hamiltonian, float64) {
	h := NewHamiltonian(g.N)
	var constant float64
	for _, e := range g.Edges {
		constant += e.W / 2
		ops := make([]Pauli, g.N)
		for i := range ops {
			ops[i] = I
		}
		ops[e.U], ops[e.V] = Z, Z
		h.Terms = append(h.Terms, Term{Coefficient: -e.W / 2, Op: String{Ops: ops}})
	}
	return h, constant
}
