package obs

import (
	"math"
	"math/rand"
	"testing"

	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
	"hsfsim/internal/graph"
	"hsfsim/internal/statevec"
	"hsfsim/internal/trotter"
)

func TestHamiltonianAddValidation(t *testing.T) {
	h := NewHamiltonian(3)
	if err := h.Add(1, "ZZ"); err == nil {
		t.Fatal("short term accepted")
	}
	if err := h.Add(1, "ZQZ"); err == nil {
		t.Fatal("invalid Pauli accepted")
	}
	if err := h.Add(0.5, "ZZI"); err != nil {
		t.Fatal(err)
	}
	if h.String() != "+0.50·ZZI" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestTransverseIsingGroundStateEnergy(t *testing.T) {
	// For J=-1 (ferromagnet), hx=0: |000> is a ground state with E = -(n-1).
	h, err := TransverseIsing(4, -1, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	s := statevec.NewState(4)
	e, err := h.Expectation(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e+3) > 1e-12 {
		t.Fatalf("E = %g, want -3", e)
	}
	if !h.IsDiagonal() {
		// hx = 0 keeps the X terms with zero coefficient — they are present
		// but the operator is not formally diagonal.
		_ = e
	}
}

func TestEnergyConservedUnderTrotterEvolution(t *testing.T) {
	// <H> is conserved by exp(-iHt); a fine Trotterization must keep it
	// nearly constant — a physics-level integration test tying obs and
	// trotter together.
	model := trotter.Ising{N: 5, J: 1, H: 0.6}
	h, err := TransverseIsing(5, 1, 0.6, false)
	if err != nil {
		t.Fatal(err)
	}
	start := statevec.NewState(5)
	hGate := gate.H(0)
	start.ApplyGate(&hGate) // break symmetry a little
	e0, err := h.Expectation(start)
	if err != nil {
		t.Fatal(err)
	}
	c, err := trotter.BuildIsing(model, trotter.Options{Steps: 64, Dt: 0.01, Order: trotter.SecondOrder})
	if err != nil {
		t.Fatal(err)
	}
	evolved := start.Clone()
	evolved.ApplyAll(c.Gates)
	e1, err := h.Expectation(evolved)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e1-e0) > 1e-3 {
		t.Fatalf("energy drifted: %g -> %g", e0, e1)
	}
}

func TestMaxCutHamiltonianMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := graph.ErdosRenyi(6, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	h, constant := MaxCutHamiltonian(g)
	if !h.IsDiagonal() {
		t.Fatal("cut Hamiltonian should be diagonal")
	}
	// Random state: <C> + const must equal the probability-weighted cut.
	s := make([]complex128, 64)
	var norm float64
	for i := range s {
		s[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(s[i])*real(s[i]) + imag(s[i])*imag(s[i])
	}
	inv := complex(1/math.Sqrt(norm), 0)
	probs := make([]float64, len(s))
	for i := range s {
		s[i] *= inv
		probs[i] = real(s[i])*real(s[i]) + imag(s[i])*imag(s[i])
	}
	viaH, err := h.DiagonalExpectation(probs)
	if err != nil {
		t.Fatal(err)
	}
	direct := g.ExpectedCutFromProbabilities(probs)
	if math.Abs(viaH+constant-direct) > 1e-10 {
		t.Fatalf("<C>+const = %g, direct = %g", viaH+constant, direct)
	}
}

func TestDiagonalExpectationRejectsOffDiagonal(t *testing.T) {
	h := NewHamiltonian(2)
	if err := h.Add(1, "XI"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.DiagonalExpectation([]float64{1, 0, 0, 0}); err == nil {
		t.Fatal("off-diagonal Hamiltonian accepted")
	}
}

func TestHamiltonianMatrixConsistency(t *testing.T) {
	// <ψ|H|ψ> via obs must match the dense matrix form Σ c_i ⊗-chain.
	h, err := TransverseIsing(3, 0.8, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	dense := cmat.New(8, 8)
	pauliM := map[Pauli]*cmat.Matrix{
		I: cmat.Identity(2),
		X: cmat.FromSlice(2, 2, []complex128{0, 1, 1, 0}),
		Z: cmat.FromSlice(2, 2, []complex128{1, 0, 0, -1}),
	}
	for _, term := range h.Terms {
		m := cmat.Identity(1)
		for q := len(term.Op.Ops) - 1; q >= 0; q-- {
			m = cmat.Kron(m, pauliM[term.Op.Ops[q]])
		}
		dense = cmat.Add(dense, cmat.Scale(complex(term.Coefficient, 0), m))
	}
	rng := rand.New(rand.NewSource(9))
	psi := make([]complex128, 8)
	var norm float64
	for i := range psi {
		psi[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(psi[i])*real(psi[i]) + imag(psi[i])*imag(psi[i])
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range psi {
		psi[i] *= inv
	}
	viaObs, err := h.Expectation(psi)
	if err != nil {
		t.Fatal(err)
	}
	hv := cmat.MulVec(dense, psi)
	var viaDense complex128
	for i := range psi {
		viaDense += complex(real(psi[i]), -imag(psi[i])) * hv[i]
	}
	if math.Abs(viaObs-real(viaDense)) > 1e-9 {
		t.Fatalf("obs %g vs dense %g", viaObs, real(viaDense))
	}
}
