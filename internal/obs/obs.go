// Package obs evaluates observables on simulated states: Pauli strings,
// their expectation values, and the MaxCut/Ising energies used to score
// QAOA output. Diagonal observables (Z strings) work on probability
// prefixes, matching the paper's partial-amplitude setting.
package obs

import (
	"fmt"
	"strings"

	"hsfsim/internal/graph"
)

// Pauli is a single-qubit Pauli operator.
type Pauli byte

// Pauli operators.
const (
	I Pauli = 'I'
	X Pauli = 'X'
	Y Pauli = 'Y'
	Z Pauli = 'Z'
)

// String is a Pauli string: Ops[q] acts on qubit q (identity if beyond the
// slice).
type String struct {
	Ops []Pauli
}

// ParseString reads a Pauli string like "IZZXI": character k acts on qubit
// k (little-endian, consistent with the rest of the library).
func ParseString(s string) (String, error) {
	ops := make([]Pauli, len(s))
	for i, r := range strings.ToUpper(s) {
		switch r {
		case 'I', 'X', 'Y', 'Z':
			ops[i] = Pauli(r)
		default:
			return String{}, fmt.Errorf("obs: invalid Pauli %q", r)
		}
	}
	return String{Ops: ops}, nil
}

// ZString builds a Z-only string with Z on the given qubits.
func ZString(n int, qubits ...int) String {
	ops := make([]Pauli, n)
	for i := range ops {
		ops[i] = I
	}
	for _, q := range qubits {
		ops[q] = Z
	}
	return String{Ops: ops}
}

// IsDiagonal reports whether the string contains only I and Z.
func (p String) IsDiagonal() bool {
	for _, op := range p.Ops {
		if op == X || op == Y {
			return false
		}
	}
	return true
}

func (p String) String() string {
	b := make([]byte, len(p.Ops))
	for i, op := range p.Ops {
		b[i] = byte(op)
	}
	return string(b)
}

// Expectation computes <ψ|P|ψ> for a full statevector.
func Expectation(amps []complex128, p String) (float64, error) {
	n := 0
	for 1<<n < len(amps) {
		n++
	}
	if 1<<n != len(amps) {
		return 0, fmt.Errorf("obs: amplitude count %d is not a power of two", len(amps))
	}
	if len(p.Ops) > n {
		return 0, fmt.Errorf("obs: Pauli string on %d qubits, state has %d", len(p.Ops), n)
	}
	if p.IsDiagonal() {
		probs := make([]float64, len(amps))
		for i, a := range amps {
			probs[i] = real(a)*real(a) + imag(a)*imag(a)
		}
		return DiagonalExpectation(probs, p)
	}
	// General case: <ψ|P|ψ> = Σ_x conj(ψ[x])·phase(x)·ψ[x ^ flipMask].
	flip := 0
	for q, op := range p.Ops {
		if op == X || op == Y {
			flip |= 1 << q
		}
	}
	var e complex128
	for x, a := range amps {
		if a == 0 {
			continue
		}
		y := x ^ flip
		// P|y> = phase · |x>; compute the phase of mapping y to x.
		phase := complex128(1)
		for q, op := range p.Ops {
			bitY := (y >> q) & 1
			switch op {
			case Z:
				if bitY == 1 {
					phase = -phase
				}
			case Y:
				// Y|0> = i|1>, Y|1> = -i|0>.
				if bitY == 0 {
					phase *= 1i
				} else {
					phase *= -1i
				}
			}
		}
		cr, ci := real(a), imag(a)
		e += complex(cr, -ci) * phase * amps[y]
	}
	return real(e), nil
}

// DiagonalExpectation computes <P> for an I/Z-only string from basis-state
// probabilities. The probabilities may cover only a prefix of the basis
// (partial amplitudes); the result is then the expectation over that
// truncated, renormalized distribution.
func DiagonalExpectation(probs []float64, p String) (float64, error) {
	if !p.IsDiagonal() {
		return 0, fmt.Errorf("obs: %s is not diagonal", p.String())
	}
	mask := 0
	for q, op := range p.Ops {
		if op == Z {
			mask |= 1 << q
		}
	}
	var e, total float64
	for x, pr := range probs {
		if pr == 0 {
			continue
		}
		total += pr
		if parity(x&mask) == 0 {
			e += pr
		} else {
			e -= pr
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("obs: zero total probability")
	}
	return e / total, nil
}

func parity(x int) int {
	p := 0
	for x != 0 {
		p ^= x & 1
		x >>= 1
	}
	return p
}

// MaxCutEnergy computes the expected cut value of a graph from basis-state
// probabilities via the ZZ correlators:
//
//	E[cut] = Σ_{(u,v)∈E} w_uv · (1 − <Z_u Z_v>)/2.
func MaxCutEnergy(probs []float64, g *graph.Graph) (float64, error) {
	var e float64
	for _, edge := range g.Edges {
		zz, err := DiagonalExpectation(probs, ZString(g.N, edge.U, edge.V))
		if err != nil {
			return 0, err
		}
		e += edge.W * (1 - zz) / 2
	}
	return e, nil
}

// IsingEnergy computes <H> for H = Σ_{(u,v)} J_uv Z_u Z_v + Σ_q h_q Z_q
// from probabilities (couplings from the graph's edge weights, fields from
// h; h may be nil).
func IsingEnergy(probs []float64, g *graph.Graph, h []float64) (float64, error) {
	var e float64
	for _, edge := range g.Edges {
		zz, err := DiagonalExpectation(probs, ZString(g.N, edge.U, edge.V))
		if err != nil {
			return 0, err
		}
		e += edge.W * zz
	}
	for q, hq := range h {
		if hq == 0 {
			continue
		}
		z, err := DiagonalExpectation(probs, ZString(g.N, q))
		if err != nil {
			return 0, err
		}
		e += hq * z
	}
	return e, nil
}
