package obs

import (
	"math"
	"math/rand"
	"testing"

	"hsfsim/internal/gate"
	"hsfsim/internal/graph"
	"hsfsim/internal/statevec"
)

func TestParseString(t *testing.T) {
	p, err := ParseString("izZx")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "IZZX" {
		t.Fatalf("parsed %q", p.String())
	}
	if p.IsDiagonal() {
		t.Fatal("X string reported diagonal")
	}
	if _, err := ParseString("IZQ"); err == nil {
		t.Fatal("invalid Pauli accepted")
	}
	d, _ := ParseString("IZZI")
	if !d.IsDiagonal() {
		t.Fatal("Z string not diagonal")
	}
}

func TestExpectationBasisStates(t *testing.T) {
	// |0>: <Z> = +1; |1>: <Z> = -1; |+>: <X> = +1.
	zero := []complex128{1, 0}
	one := []complex128{0, 1}
	plus := []complex128{complex(math.Sqrt2/2, 0), complex(math.Sqrt2/2, 0)}
	z, _ := ParseString("Z")
	x, _ := ParseString("X")
	y, _ := ParseString("Y")
	if e, _ := Expectation(zero, z); math.Abs(e-1) > 1e-12 {
		t.Fatalf("<0|Z|0> = %g", e)
	}
	if e, _ := Expectation(one, z); math.Abs(e+1) > 1e-12 {
		t.Fatalf("<1|Z|1> = %g", e)
	}
	if e, _ := Expectation(plus, x); math.Abs(e-1) > 1e-12 {
		t.Fatalf("<+|X|+> = %g", e)
	}
	if e, _ := Expectation(plus, y); math.Abs(e) > 1e-12 {
		t.Fatalf("<+|Y|+> = %g", e)
	}
	// |i> = (|0> + i|1>)/√2: <Y> = +1.
	iState := []complex128{complex(math.Sqrt2/2, 0), complex(0, math.Sqrt2/2)}
	if e, _ := Expectation(iState, y); math.Abs(e-1) > 1e-12 {
		t.Fatalf("<i|Y|i> = %g", e)
	}
}

func TestExpectationBell(t *testing.T) {
	s := statevec.NewState(2)
	h := gate.H(0)
	cx := gate.CNOT(0, 1)
	s.ApplyGate(&h)
	s.ApplyGate(&cx)
	// Bell state: <ZZ> = <XX> = +1, <YY> = -1, <Z_0> = 0.
	for _, c := range []struct {
		p    string
		want float64
	}{{"ZZ", 1}, {"XX", 1}, {"YY", -1}, {"ZI", 0}, {"IZ", 0}} {
		p, err := ParseString(c.p)
		if err != nil {
			t.Fatal(err)
		}
		e, err := Expectation(s, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e-c.want) > 1e-12 {
			t.Errorf("<%s> = %g, want %g", c.p, e, c.want)
		}
	}
}

func TestExpectationErrors(t *testing.T) {
	z, _ := ParseString("Z")
	if _, err := Expectation([]complex128{1, 0, 0}, z); err == nil {
		t.Fatal("non-power-of-two state accepted")
	}
	long, _ := ParseString("ZZZ")
	if _, err := Expectation([]complex128{1, 0}, long); err == nil {
		t.Fatal("oversized string accepted")
	}
	if _, err := DiagonalExpectation([]float64{1}, String{Ops: []Pauli{X}}); err == nil {
		t.Fatal("non-diagonal string accepted")
	}
	if _, err := DiagonalExpectation([]float64{0, 0}, ZString(1, 0)); err == nil {
		t.Fatal("zero distribution accepted")
	}
}

func TestDiagonalMatchesGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := make([]complex128, 16)
	var norm float64
	for i := range s {
		s[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(s[i])*real(s[i]) + imag(s[i])*imag(s[i])
	}
	inv := complex(1/math.Sqrt(norm), 0)
	for i := range s {
		s[i] *= inv
	}
	probs := make([]float64, len(s))
	for i, a := range s {
		probs[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	for _, str := range []string{"ZIII", "ZZII", "IZZZ", "ZZZZ"} {
		p, _ := ParseString(str)
		gen, err := Expectation(s, p)
		if err != nil {
			t.Fatal(err)
		}
		diag, err := DiagonalExpectation(probs, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gen-diag) > 1e-10 {
			t.Errorf("%s: general %g vs diagonal %g", str, gen, diag)
		}
	}
}

func TestMaxCutEnergyMatchesDirect(t *testing.T) {
	// The ZZ-correlator energy must equal the direct Σ p(x)·cut(x).
	rng := rand.New(rand.NewSource(4))
	g, err := graph.ErdosRenyi(5, 0.6, rng)
	if err != nil {
		t.Fatal(err)
	}
	probs := make([]float64, 32)
	total := 0.0
	for i := range probs {
		probs[i] = rng.Float64()
		total += probs[i]
	}
	for i := range probs {
		probs[i] /= total
	}
	viaZZ, err := MaxCutEnergy(probs, g)
	if err != nil {
		t.Fatal(err)
	}
	direct := g.ExpectedCutFromProbabilities(probs)
	if math.Abs(viaZZ-direct) > 1e-10 {
		t.Fatalf("ZZ energy %g vs direct %g", viaZZ, direct)
	}
}

func TestIsingEnergyGroundState(t *testing.T) {
	// Ferromagnetic chain J=-1: |000> has energy -2 (two bonds) plus field.
	g := graph.New(3)
	_ = g.AddEdge(0, 1, -1)
	_ = g.AddEdge(1, 2, -1)
	probs := make([]float64, 8)
	probs[0] = 1
	e, err := IsingEnergy(probs, g, []float64{0.5, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// <Z_0 Z_1> = <Z_1 Z_2> = +1 on |000>, <Z_0> = +1.
	want := -1.0 - 1.0 + 0.5
	if math.Abs(e-want) > 1e-12 {
		t.Fatalf("Ising energy = %g, want %g", e, want)
	}
}

func TestZString(t *testing.T) {
	p := ZString(4, 1, 3)
	if p.String() != "IZIZ" {
		t.Fatalf("ZString = %q", p.String())
	}
}

func TestPartialProbabilitiesPrefix(t *testing.T) {
	// A diagonal expectation over a prefix renormalizes: for a state
	// concentrated in the prefix it matches the full expectation.
	probs := []float64{0.5, 0.25, 0.25, 0} // qubit-0 distribution over 2 qubits
	full, err := DiagonalExpectation(probs, ZString(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	prefix, err := DiagonalExpectation(probs[:3], ZString(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-prefix) > 1e-12 {
		t.Fatalf("prefix %g vs full %g", prefix, full)
	}
}
