//go:build purego || (!amd64 && !arm64)

package cpufeat

// No detection: every feature stays false, so the kernel dispatch falls back
// to the portable span/scalar arms.
