// Package cpufeat detects the CPU instruction-set extensions the statevector
// kernels can exploit, without importing anything outside the standard
// library (golang.org/x/sys/cpu is deliberately not a dependency: the repo
// vendors nothing, and the three bits the kernels care about fit in one
// CPUID probe).
//
// Detection runs once at package init. On amd64 it executes CPUID/XGETBV
// directly (see cpuid_amd64.s): an extension is reported only when the CPU
// implements it AND the OS has enabled the register state it needs (AVX
// requires OSXSAVE plus XCR0 XMM|YMM bits, per the Intel SDM — a kernel that
// does not context-switch YMM state would corrupt it). On arm64, ASIMD
// (NEON) with double-precision lanes is ARMv8-A baseline, so it is reported
// unconditionally. Under -tags purego, and on every other architecture, all
// features read false — the portable arms never consult this package's
// results anyway.
package cpufeat

// X86 reports amd64 extensions usable by this process. All fields are false
// on other architectures and under -tags purego.
var X86 struct {
	// HasAVX2 is true when the CPU implements AVX2 and the OS saves and
	// restores YMM state (OSXSAVE set, XCR0 bits 1-2 enabled).
	HasAVX2 bool
	// HasFMA is true when the CPU implements FMA3. The AVX2 kernel arm
	// requires both HasAVX2 and HasFMA.
	HasFMA bool
}

// ARM64 reports arm64 features usable by this process. All fields are false
// on other architectures and under -tags purego.
var ARM64 struct {
	// HasASIMD is true on every arm64 build: Advanced SIMD with 64-bit
	// float lanes is mandatory in ARMv8-A.
	HasASIMD bool
}
