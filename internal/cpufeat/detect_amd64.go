//go:build !purego

package cpufeat

// cpuid executes the CPUID instruction with the given EAX/ECX inputs.
// Implemented in cpuid_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0). Only valid when CPUID
// reports OSXSAVE; the caller checks first.
func xgetbv() (eax, edx uint32)

const (
	leaf1FMA     = 1 << 12 // CPUID.01H:ECX.FMA
	leaf1OSXSAVE = 1 << 27 // CPUID.01H:ECX.OSXSAVE
	leaf1AVX     = 1 << 28 // CPUID.01H:ECX.AVX
	leaf7AVX2    = 1 << 5  // CPUID.07H.0:EBX.AVX2
	xcr0SSE      = 1 << 1  // XCR0: XMM state enabled by the OS
	xcr0AVX      = 1 << 2  // XCR0: YMM state enabled by the OS
)

func init() {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)

	// YMM registers are usable only when the OS opted into saving them.
	osAVX := false
	if ecx1&leaf1OSXSAVE != 0 {
		xlo, _ := xgetbv()
		osAVX = xlo&(xcr0SSE|xcr0AVX) == xcr0SSE|xcr0AVX
	}
	if !osAVX || ecx1&leaf1AVX == 0 {
		return
	}
	X86.HasFMA = ecx1&leaf1FMA != 0
	if maxLeaf >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		X86.HasAVX2 = ebx7&leaf7AVX2 != 0
	}
}
