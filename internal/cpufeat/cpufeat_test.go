package cpufeat

import (
	"runtime"
	"testing"
)

// TestDetectionRan sanity-checks the init-time probe: it must not report an
// arch's features on a different arch, and on arm64 ASIMD is baseline.
func TestDetectionRan(t *testing.T) {
	t.Logf("GOARCH=%s X86=%+v ARM64=%+v", runtime.GOARCH, X86, ARM64)
	if runtime.GOARCH != "amd64" && (X86.HasAVX2 || X86.HasFMA) {
		t.Fatalf("x86 features reported on %s: %+v", runtime.GOARCH, X86)
	}
	if runtime.GOARCH != "arm64" && ARM64.HasASIMD {
		t.Fatalf("arm64 features reported on %s: %+v", runtime.GOARCH, ARM64)
	}
}
