//go:build !purego

package cpufeat

func init() {
	// Advanced SIMD with double-precision lanes is ARMv8-A baseline; every
	// arm64 target Go supports has it.
	ARM64.HasASIMD = true
}
