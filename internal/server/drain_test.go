package server

import (
	"encoding/json"
	"io"
	"math/cmplx"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hsfsim/internal/dist"
)

// TestDrainLifecycle: Drain flips /readyz to a 503 "draining" verdict and
// makes the worker refuse new /dist/run leases, and /dist/deregister removes
// the drained worker from a coordinator's fleet.
func TestDrainLifecycle(t *testing.T) {
	svc := NewService(quietConfig())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	readyz := func() (int, readyBody) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body readyBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := readyz(); code != http.StatusOK || body.Status != "ready" || body.Draining {
		t.Fatalf("before drain: code=%d body=%+v", code, body)
	}

	svc.Drain()

	if code, body := readyz(); code != http.StatusServiceUnavailable || body.Status != "draining" || !body.Draining {
		t.Fatalf("after drain: code=%d body=%+v", code, body)
	}

	// New leases are refused before the request body is even decoded.
	resp := post(t, srv, "/dist/run", dist.RunRequest{})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/dist/run while draining: status %d, want 503", resp.StatusCode)
	}
	raw, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(raw), "worker draining") {
		t.Fatalf("/dist/run while draining: body %q", raw)
	}

	// The drained daemon deregisters from its coordinator on the way out.
	co := NewService(quietConfig())
	cosrv := httptest.NewServer(co.Handler())
	defer cosrv.Close()
	reg := post(t, cosrv, "/dist/register", dist.RegisterRequest{Addr: "worker-a:9000"})
	reg.Body.Close()
	if len(co.Workers()) != 1 {
		t.Fatalf("fleet after register: %v", co.Workers())
	}
	dereg := post(t, cosrv, "/dist/deregister", dist.DeregisterRequest{Addr: "worker-a:9000"})
	defer dereg.Body.Close()
	if dereg.StatusCode != http.StatusOK {
		t.Fatalf("/dist/deregister: status %d", dereg.StatusCode)
	}
	if len(co.Workers()) != 0 {
		t.Fatalf("fleet after deregister: %v", co.Workers())
	}
}

// TestDistributeSurvivesDrainedWorker: a fleet member that is draining (every
// lease to it comes back 503) costs retries and strikes but not correctness —
// the coordinator retires it and the rest of the fleet finishes the job.
func TestDistributeSurvivesDrainedWorker(t *testing.T) {
	w1 := httptest.NewServer(New())
	defer w1.Close()
	w2svc := NewService(quietConfig())
	w2 := httptest.NewServer(w2svc.Handler())
	defer w2.Close()
	w2svc.Drain() // w2 refuses every lease from here on

	svc := NewService(quietConfig())
	co := httptest.NewServer(svc.Handler())
	defer co.Close()
	svc.AddWorker(hostPort(w1))
	svc.AddWorker(hostPort(w2))

	cutPos := 3
	req := SimulateRequest{QASM: distQASM(8, 10, 11), Method: "joint", CutPos: &cutPos}
	resp := post(t, co, "/simulate", req)
	defer resp.Body.Close()
	var local SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&local); err != nil {
		t.Fatal(err)
	}

	req.Distribute = true
	resp2 := post(t, co, "/simulate", req)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp2.Body)
		t.Fatalf("distributed simulate with a draining worker: status %d: %s", resp2.StatusCode, raw)
	}
	var got SimulateResponse
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	for i := range local.Amplitudes {
		d := cmplx.Abs(complex(got.Amplitudes[i].Re-local.Amplitudes[i].Re,
			got.Amplitudes[i].Im-local.Amplitudes[i].Im))
		if d > 1e-12 {
			t.Fatalf("amplitude %d differs by %g", i, d)
		}
	}
}
