// Tests of the observability surfaces: /debug/trace addressing spans by
// request and job IDs, job lifecycle spans joining the submitting request's
// trace, and the per-tenant jobs metrics exposed on /metrics.
package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hsfsim/internal/jobs"
)

// chromeDump is the subset of the Chrome trace-event format the tests read.
type chromeDump struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func getTrace(t *testing.T, srv *httptest.Server, query string) (chromeDump, int) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/debug/trace" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump chromeDump
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
			t.Fatalf("decoding trace dump: %v", err)
		}
	}
	return dump, resp.StatusCode
}

func spanNames(dump chromeDump) map[string]int {
	names := map[string]int{}
	for _, ev := range dump.TraceEvents {
		if ev.Ph == "X" {
			names[ev.Name]++
		}
	}
	return names
}

func TestDebugTraceByRequestID(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()

	cutPos := 0
	resp := post(t, srv, "/simulate", SimulateRequest{QASM: bellQASM, Method: "joint", CutPos: &cutPos})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/simulate status %d, want 200", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Fatal("/simulate response has no X-Request-Id")
	}

	// Addressed by request ID, the dump is the one trace that request
	// opened: its request span plus the engine spans under it.
	dump, status := getTrace(t, srv, "?run="+reqID)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/trace?run=%s: status %d, want 200", reqID, status)
	}
	names := spanNames(dump)
	if names["/simulate"] == 0 {
		t.Fatalf("filtered dump has no /simulate request span; spans: %v", names)
	}
	if names["compile"] == 0 || names["walk"] == 0 {
		t.Fatalf("filtered dump is missing engine spans; spans: %v", names)
	}
	var traceID string
	for _, ev := range dump.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		id, _ := ev.Args["trace"].(string)
		if traceID == "" {
			traceID = id
		} else if id != traceID {
			t.Fatalf("span %q is on trace %s, dump mixes traces (want only %s)", ev.Name, id, traceID)
		}
	}

	// The same trace must be addressable by its 32-hex trace ID directly.
	byID, status := getTrace(t, srv, "?run="+traceID)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/trace?run=<trace id>: status %d, want 200", status)
	}
	if got, want := len(byID.TraceEvents), len(dump.TraceEvents); got != want {
		t.Fatalf("trace-ID dump has %d events, request-ID dump has %d", got, want)
	}

	// Unknown identifiers are a 404, not an empty dump.
	if _, status := getTrace(t, srv, "?run=no-such-run"); status != http.StatusNotFound {
		t.Fatalf("GET /debug/trace?run=no-such-run: status %d, want 404", status)
	}

	// The unfiltered dump serves the whole recorder.
	full, status := getTrace(t, srv, "")
	if status != http.StatusOK {
		t.Fatalf("GET /debug/trace: status %d, want 200", status)
	}
	if len(full.TraceEvents) < len(dump.TraceEvents) {
		t.Fatalf("full dump (%d events) smaller than one filtered trace (%d)", len(full.TraceEvents), len(dump.TraceEvents))
	}
}

func TestDebugTraceDisabled(t *testing.T) {
	cfg := quietConfig()
	cfg.TraceCapacity = -1
	srv := httptest.NewServer(NewService(cfg).Handler())
	defer srv.Close()
	if _, status := getTrace(t, srv, ""); status != http.StatusNotFound {
		t.Fatalf("GET /debug/trace with tracing disabled: status %d, want 404", status)
	}
}

// TestJobSpansJoinRequestTrace submits an async job and asserts its
// lifecycle spans (job-queued, job-batch) landed on the same trace as the
// POST /jobs request that created it — addressable by the job ID.
func TestJobSpansJoinRequestTrace(t *testing.T) {
	_, srv := newJobsTestServer(t, quietConfig())

	snap, resp := submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: bellQASM, Method: "joint"},
		Tenant:          "acme",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	waitJobState(t, srv, snap.ID, jobs.StateDone)

	dump, status := getTrace(t, srv, "?run="+snap.ID)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/trace?run=%s: status %d, want 200", snap.ID, status)
	}
	names := spanNames(dump)
	for _, want := range []string{"job-queued", "job-batch", "/jobs"} {
		if names[want] == 0 {
			t.Fatalf("job trace is missing a %q span (job lifecycle did not join the request trace); spans: %v", want, names)
		}
	}
}

// TestTenantMetricsExposed drives jobs under two tenants and asserts the
// per-tenant families show up on /metrics with tenant labels.
func TestTenantMetricsExposed(t *testing.T) {
	_, srv := newJobsTestServer(t, quietConfig())

	for _, tenant := range []string{"acme", "globex"} {
		snap, resp := submitJob(t, srv, JobSubmitRequest{
			SimulateRequest: SimulateRequest{QASM: bellQASM, Method: "joint"},
			Tenant:          tenant,
		})
		resp.Body.Close()
		waitJobState(t, srv, snap.ID, jobs.StateDone)
	}

	families := scrapeMetrics(t, srv.URL+"/metrics")
	sampleFor := func(family, tenant string) (float64, bool) {
		f := families[family]
		if f == nil {
			t.Fatalf("family %s missing from /metrics", family)
		}
		for _, s := range f.samples {
			if strings.Contains(s.labels, `tenant="`+tenant+`"`) {
				return s.value, true
			}
		}
		return 0, false
	}
	for _, tenant := range []string{"acme", "globex"} {
		if v, ok := sampleFor("hsfsimd_jobs_tenant_submitted_total", tenant); !ok || v < 1 {
			t.Fatalf("hsfsimd_jobs_tenant_submitted_total{tenant=%q} = %v (present=%t), want >= 1", tenant, v, ok)
		}
		if v, ok := sampleFor("hsfsimd_jobs_tenant_completed_total", tenant); !ok || v < 1 {
			t.Fatalf("hsfsimd_jobs_tenant_completed_total{tenant=%q} = %v (present=%t), want >= 1", tenant, v, ok)
		}
	}
	// The gauges exist for every tracked tenant, even at rest.
	for _, family := range []string{"hsfsimd_jobs_tenant_queued", "hsfsimd_jobs_tenant_running", "hsfsimd_jobs_tenant_queue_age_seconds"} {
		f := families[family]
		if f == nil {
			t.Fatalf("family %s missing from /metrics", family)
		}
		if f.typ != "gauge" {
			t.Fatalf("family %s has type %q, want gauge", family, f.typ)
		}
		if _, ok := sampleFor(family, "acme"); !ok {
			t.Fatalf("family %s has no sample for tenant=acme", family)
		}
	}
}
