package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hsfsim"
	"hsfsim/internal/jobs"
)

// slowQASM builds a standard-HSF workload with 2^cuts Feynman paths of cheap
// per-path work: enough wall clock for tests to observe queued/running states
// without burning real compute.
func slowQASM(n, cuts int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "OPENQASM 2.0;\nqreg q[%d];\n", n)
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "h q[%d];\n", q)
	}
	for i := 0; i < cuts; i++ {
		fmt.Fprintf(&b, "rz(0.%d) q[%d];\n", i+1, i%n)
		fmt.Fprintf(&b, "cx q[%d],q[%d];\n", n/2-1, n/2)
	}
	return b.String()
}

func newJobsTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := NewService(cfg)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		// Cancel whatever is still queued or running so teardown doesn't wait
		// out slow walks, then close the manager.
		for _, s := range svc.Jobs().List("") {
			if !s.State.Terminal() {
				_, _ = svc.Jobs().Cancel(s.ID)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.CloseJobs(ctx)
		srv.Close()
	})
	return svc, srv
}

func submitJob(t *testing.T, srv *httptest.Server, req JobSubmitRequest) (jobs.Snapshot, *http.Response) {
	t.Helper()
	resp := post(t, srv, "/jobs", req)
	t.Cleanup(func() { resp.Body.Close() })
	var snap jobs.Snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return snap, resp
}

func waitJobState(t *testing.T, srv *httptest.Server, id string, want jobs.State) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(srv.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var snap jobs.Snapshot
		err = json.NewDecoder(resp.Body).Decode(&snap)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, snap.State, snap.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobs.Snapshot{}
}

// TestJobLifecycle covers the submit → poll → result path and checks the
// job's amplitudes against a direct Simulate call on the same circuit.
func TestJobLifecycle(t *testing.T) {
	_, srv := newJobsTestServer(t, Config{})

	snap, resp := submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: bellQASM, Method: "joint"},
		Tenant:          "alice",
		Priority:        3,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if snap.ID == "" || snap.Tenant != "alice" || snap.Priority != 3 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+snap.ID {
		t.Fatalf("Location %q", loc)
	}
	// Satellite: the request ID assigned by the HTTP layer must ride into the
	// job so log lines on both sides correlate.
	if reqID := resp.Header.Get("X-Request-Id"); snap.RequestID != reqID || reqID == "" {
		t.Fatalf("request ID not propagated: header %q, snapshot %q", reqID, snap.RequestID)
	}

	done := waitJobState(t, srv, snap.ID, jobs.StateDone)
	if done.NumQubits != 2 {
		t.Fatalf("done snapshot NumQubits = %d", done.NumQubits)
	}

	rresp, err := http.Get(srv.URL + "/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", rresp.StatusCode)
	}
	var got SimulateResponse
	if err := json.NewDecoder(rresp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.NumQubits != 2 || len(got.Amplitudes) != 4 {
		t.Fatalf("result: qubits=%d amps=%d", got.NumQubits, len(got.Amplitudes))
	}
	c, err := parseCircuit(bellQASM)
	if err != nil {
		t.Fatal(err)
	}
	want, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.JointHSF})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range got.Amplitudes {
		if math.Abs(a.Re-real(want.Amplitudes[i]))+math.Abs(a.Im-imag(want.Amplitudes[i])) > 1e-12 {
			t.Fatalf("amplitude %d: job (%g,%g) vs direct %v", i, a.Re, a.Im, want.Amplitudes[i])
		}
	}

	// The job shows up in the list, and tenant filtering works.
	var list JobListResponse
	lresp, err := http.Get(srv.URL + "/jobs?tenant=alice")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != snap.ID {
		t.Fatalf("list: %+v", list.Jobs)
	}
	lresp2, err := http.Get(srv.URL + "/jobs?tenant=nobody")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp2.Body.Close()
	if err := json.NewDecoder(lresp2.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 0 {
		t.Fatalf("tenant filter leaked: %+v", list.Jobs)
	}
}

func TestJobSubmitRejections(t *testing.T) {
	_, srv := newJobsTestServer(t, Config{})

	_, resp := submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: "not qasm", Method: "joint"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad qasm: status %d", resp.StatusCode)
	}

	_, resp = submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: bellQASM, Method: "schrodinger", Distribute: true},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("distribute+schrodinger: status %d", resp.StatusCode)
	}

	if r, err := http.Get(srv.URL + "/jobs/job-missing"); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job: status %d", r.StatusCode)
		}
	}
}

func TestJobCancelAndResultConflict(t *testing.T) {
	// One runner pinned on a slow job keeps the second job queued, so cancel
	// and the 409 no-result path are deterministic.
	_, srv := newJobsTestServer(t, Config{JobRunners: 1})
	slow, resp := submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: slowQASM(16, 15), Method: "standard"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow submit: %d", resp.StatusCode)
	}
	queued, resp := submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: bellQASM, Method: "joint"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: %d", resp.StatusCode)
	}

	rr, err := http.Get(srv.URL + "/jobs/" + queued.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusConflict {
		t.Fatalf("result of unfinished job: status %d, want 409", rr.StatusCode)
	}

	cr, err := http.Post(srv.URL+"/jobs/"+queued.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cr.Body.Close()
	var snap jobs.Snapshot
	if err := json.NewDecoder(cr.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != jobs.StateCancelled {
		t.Fatalf("cancel state %s", snap.State)
	}
	if _, err := http.Post(srv.URL+"/jobs/"+slow.ID+"/cancel", "application/json", nil); err != nil {
		t.Fatal(err)
	}
}

// TestJobQueueFullRetryAfterAndReadyz fills the queue and checks the two
// saturation surfaces: submit 429s carry Retry-After, and /readyz flips to
// 503 "saturated" reporting queue depth.
func TestJobQueueFullRetryAfterAndReadyz(t *testing.T) {
	_, srv := newJobsTestServer(t, Config{JobRunners: 1, JobQueueCap: 2})

	var shed *http.Response
	for i := 0; i < 10; i++ {
		_, resp := submitJob(t, srv, JobSubmitRequest{
			SimulateRequest: SimulateRequest{QASM: slowQASM(16, 15), Method: "standard"},
		})
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}
	if shed == nil {
		t.Fatal("queue (cap 2) never shed a submission")
	}
	ra, err := strconv.Atoi(shed.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q on shed submit", shed.Header.Get("Retry-After"))
	}

	rresp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with full queue: status %d, want 503", rresp.StatusCode)
	}
	var body struct {
		Status       string `json:"status"`
		JobsQueued   int    `json:"jobs_queued"`
		JobsQueueCap int    `json:"jobs_queue_cap"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "saturated" || body.JobsQueued < body.JobsQueueCap || body.JobsQueueCap != 2 {
		t.Fatalf("readyz body: %+v", body)
	}
	if rresp.Header.Get("Retry-After") == "" {
		t.Fatal("saturated /readyz missing Retry-After")
	}
}

func TestJobTenantQuota(t *testing.T) {
	_, srv := newJobsTestServer(t, Config{JobRunners: 1, TenantQuota: 1})

	_, resp := submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: slowQASM(16, 15), Method: "standard"},
		Tenant:          "a",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	_, resp = submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: bellQASM, Method: "joint"},
		Tenant:          "a",
	})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 missing Retry-After")
	}
	// A different tenant is unaffected by a's quota.
	_, resp = submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: bellQASM, Method: "joint"},
		Tenant:          "b",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant: status %d", resp.StatusCode)
	}
}

// TestJobBatchingSharedPlan pins the batching contract end to end: two
// identical submissions queued behind a busy runner run as ONE batch sharing
// one compiled plan and one walk, visible in the snapshots and the manager's
// telemetry counters; a near-miss circuit (one angle differs) keys apart.
func TestJobBatchingSharedPlan(t *testing.T) {
	svc, srv := newJobsTestServer(t, Config{JobRunners: 1})

	before := svc.Jobs().Stats()
	// The blocker pins the single runner while the twins queue. Its walk has
	// 2^18 paths — far more than 1.5s of work with or without the race
	// detector — and the request timeout cancels it cooperatively at exactly
	// 1.5s of wall clock, so the pin's duration is deterministic in both
	// modes: long enough for three ms-scale submissions, short enough to
	// keep the test fast.
	_, resp := submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: slowQASM(16, 18), Method: "standard", TimeoutMillis: 1500},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker: %d", resp.StatusCode)
	}
	var twins [2]jobs.Snapshot
	for i := range twins {
		snap, resp := submitJob(t, srv, JobSubmitRequest{
			SimulateRequest: SimulateRequest{QASM: cascadeQASM, Method: "joint"},
			Tenant:          "twin",
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("twin %d: %d", i, resp.StatusCode)
		}
		twins[i] = snap
	}
	if twins[0].Fingerprint != twins[1].Fingerprint {
		t.Fatalf("identical submissions keyed apart: %x vs %x", twins[0].Fingerprint, twins[1].Fingerprint)
	}
	nearMiss, resp := submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: strings.Replace(cascadeQASM, "rzz(0.3)", "rzz(0.30000001)", 1), Method: "joint"},
		Tenant:          "twin",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("near miss: %d", resp.StatusCode)
	}
	if nearMiss.Fingerprint == twins[0].Fingerprint {
		t.Fatal("near-miss circuit collided with the twins' plan key")
	}

	for _, tw := range twins {
		done := waitJobState(t, srv, tw.ID, jobs.StateDone)
		if done.BatchSize != 2 {
			t.Fatalf("twin %s: batch size %d, want 2", tw.ID, done.BatchSize)
		}
	}
	waitJobState(t, srv, nearMiss.ID, jobs.StateDone)

	after := svc.Jobs().Stats()
	if got := after.BatchedJobs - before.BatchedJobs; got < 2 {
		t.Fatalf("batched jobs counter rose by %d, want >= 2", got)
	}
	// Two distinct circuits compiled (twins share one plan); the twin batch
	// is one walk, so batches < jobs completed.
	if after.PlanMisses-before.PlanMisses < 2 {
		t.Fatalf("plan misses: %+v -> %+v", before, after)
	}
	if after.Batches-before.Batches < 2 {
		t.Fatalf("batches: %+v -> %+v", before, after)
	}

	// Both twins return the same, correct amplitudes.
	want, err := hsfsim.Simulate(mustParse(t, cascadeQASM), hsfsim.Options{Method: hsfsim.JointHSF})
	if err != nil {
		t.Fatal(err)
	}
	for _, tw := range twins {
		rr, err := http.Get(srv.URL + "/jobs/" + tw.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var got SimulateResponse
		err = json.NewDecoder(rr.Body).Decode(&got)
		rr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range got.Amplitudes {
			if math.Abs(a.Re-real(want.Amplitudes[i]))+math.Abs(a.Im-imag(want.Amplitudes[i])) > 1e-12 {
				t.Fatalf("twin %s amplitude %d off: (%g,%g) vs %v", tw.ID, i, a.Re, a.Im, want.Amplitudes[i])
			}
		}
	}
}

func mustParse(t *testing.T, qasmSrc string) *hsfsim.Circuit {
	t.Helper()
	c, err := parseCircuit(qasmSrc)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestJobEventsSSE consumes the event stream of a small job: progress/terminal
// framing, chunked amplitudes covering the full statevector, and a final
// event named after the terminal state.
func TestJobEventsSSE(t *testing.T) {
	_, srv := newJobsTestServer(t, Config{})
	snap, resp := submitJob(t, srv, JobSubmitRequest{
		SimulateRequest: SimulateRequest{QASM: bellQASM, Method: "joint"},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	er, err := http.Get(srv.URL + "/jobs/" + snap.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer er.Body.Close()
	if ct := er.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var (
		event    string
		data     []byte
		ampsSeen = map[int]Amplitude{}
		total    = -1
		final    jobs.Snapshot
		finalEvt string
	)
	sc := bufio.NewScanner(er.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() && finalEvt == "" {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			switch event {
			case "progress":
				var s jobs.Snapshot
				if err := json.Unmarshal(data, &s); err != nil {
					t.Fatalf("progress frame: %v", err)
				}
				if s.ID != snap.ID {
					t.Fatalf("progress for %s, want %s", s.ID, snap.ID)
				}
			case "amplitudes":
				var ch AmplitudeChunk
				if err := json.Unmarshal(data, &ch); err != nil {
					t.Fatalf("amplitudes frame: %v", err)
				}
				total = ch.Total
				for i, a := range ch.Amplitudes {
					ampsSeen[ch.Offset+i] = a
				}
			default:
				finalEvt = event
				if err := json.Unmarshal(data, &final); err != nil {
					t.Fatalf("terminal frame: %v", err)
				}
			}
			event, data = "", nil
		}
	}
	if finalEvt != "done" || final.State != jobs.StateDone {
		t.Fatalf("terminal event %q state %s", finalEvt, final.State)
	}
	if total != 4 || len(ampsSeen) != 4 {
		t.Fatalf("streamed %d/%d amplitudes", len(ampsSeen), total)
	}
	want, err := hsfsim.Simulate(mustParse(t, bellQASM), hsfsim.Options{Method: hsfsim.JointHSF})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		a := ampsSeen[i]
		if math.Abs(a.Re-real(want.Amplitudes[i]))+math.Abs(a.Im-imag(want.Amplitudes[i])) > 1e-12 {
			t.Fatalf("streamed amplitude %d off: (%g,%g) vs %v", i, a.Re, a.Im, want.Amplitudes[i])
		}
	}
}
