// Runtime metrics, two surfaces:
//
//   - GET /debug/vars — the process-global expvar map "hsfsimd", served by
//     the standard expvar handler. Counters describe the whole process:
//     multiple service instances (tests, embedded daemons) aggregate here.
//   - GET /metrics — Prometheus text exposition of the same counters plus
//     the per-service latency histograms (leaf latency, segment sweep time,
//     dist lease durations) and runtime gauges (heap, GC, goroutines).
//
// Dist lease stats are scoped per coordinator: every service owns a private
// *dist.Stats (so concurrent services — e.g. a coordinator and its workers
// in one test process — never cross-talk), and the process-global expvar
// values are computed by summing a registry of all live instances.
package server

import (
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"hsfsim/internal/dist"
	"hsfsim/internal/jobs"
	"hsfsim/internal/statevec"
	"hsfsim/internal/telemetry"
)

var (
	metricRequests       = new(expvar.Int) // HTTP requests received (all endpoints)
	metricSimulations    = new(expvar.Int) // /simulate runs completed successfully
	metricPathsSimulated = new(expvar.Int) // Feynman path leaves across local simulations
	metricShed429        = new(expvar.Int) // requests shed by the concurrency limiter
	metricInFlight       = new(expvar.Int) // simulation requests currently executing
	metricWorkerRuns     = new(expvar.Int) // /dist/run leases served as a worker
)

// distStatsRegistry tracks every service's private *dist.Stats so the
// process-global expvar aggregation can sum over them.
var distStatsRegistry struct {
	mu  sync.Mutex
	all []*dist.Stats
}

// newDistStats allocates a coordinator-scoped stats block and registers it
// for process-global aggregation.
func newDistStats() *dist.Stats {
	s := &dist.Stats{}
	distStatsRegistry.mu.Lock()
	distStatsRegistry.all = append(distStatsRegistry.all, s)
	distStatsRegistry.mu.Unlock()
	return s
}

// sumDistStats folds one counter across every registered coordinator.
func sumDistStats(read func(*dist.Stats) int64) int64 {
	distStatsRegistry.mu.Lock()
	defer distStatsRegistry.mu.Unlock()
	var total int64
	for _, s := range distStatsRegistry.all {
		total += read(s)
	}
	return total
}

func init() {
	m := expvar.NewMap("hsfsimd")
	m.Set("requests_total", metricRequests)
	m.Set("simulations_total", metricSimulations)
	m.Set("paths_simulated_total", metricPathsSimulated)
	m.Set("shed_429_total", metricShed429)
	m.Set("in_flight", metricInFlight)
	m.Set("worker_runs_total", metricWorkerRuns)
	m.Set("dist_leases_granted_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.LeasesGranted.Load() })
	}))
	m.Set("dist_lease_reassignments_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.LeasesReassigned.Load() })
	}))
	m.Set("dist_workers_retired_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.WorkersRetired.Load() })
	}))
	m.Set("dist_prefixes_merged_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.PrefixesMerged.Load() })
	}))
	m.Set("dist_paths_simulated_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.PathsSimulated.Load() })
	}))
	m.Set("dist_leases_in_flight", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.InFlightLeases.Load() })
	}))
	m.Set("dist_leases_stolen_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.LeasesStolen.Load() })
	}))
	m.Set("dist_leases_resplit_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.LeasesResplit.Load() })
	}))
	m.Set("dist_partial_returns_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.PartialReturns.Load() })
	}))
	m.Set("dist_partials_duplicate_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.PartialsDuplicate.Load() })
	}))
	m.Set("dist_store_flushes_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.StoreFlushes.Load() })
	}))
	m.Set("dist_workers_joined_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.WorkersJoined.Load() })
	}))
	m.Set("dist_workers_left_total", expvar.Func(func() any {
		return sumDistStats(func(s *dist.Stats) int64 { return s.WorkersLeft.Load() })
	}))
	for name, read := range map[string]func(jobs.StatsSnapshot) int64{
		"jobs_queued":               int64Field(func(st jobs.StatsSnapshot) int { return st.Queued }),
		"jobs_running":              func(st jobs.StatsSnapshot) int64 { return st.Running },
		"jobs_submitted_total":      func(st jobs.StatsSnapshot) int64 { return st.Submitted },
		"jobs_completed_total":      func(st jobs.StatsSnapshot) int64 { return st.Completed },
		"jobs_failed_total":         func(st jobs.StatsSnapshot) int64 { return st.Failed },
		"jobs_cancelled_total":      func(st jobs.StatsSnapshot) int64 { return st.Cancelled },
		"jobs_resumed_total":        func(st jobs.StatsSnapshot) int64 { return st.Resumed },
		"jobs_batches_total":        func(st jobs.StatsSnapshot) int64 { return st.Batches },
		"jobs_batched_total":        func(st jobs.StatsSnapshot) int64 { return st.BatchedJobs },
		"jobs_plan_hits_total":      func(st jobs.StatsSnapshot) int64 { return st.PlanHits },
		"jobs_plan_misses_total":    func(st jobs.StatsSnapshot) int64 { return st.PlanMisses },
		"jobs_plan_evictions_total": func(st jobs.StatsSnapshot) int64 { return st.PlanEvictions },
	} {
		read := read
		m.Set(name, expvar.Func(func() any { return sumJobsStats(read) }))
	}
}

// int64Field adapts an int-typed StatsSnapshot field to the int64 reader
// shape sumJobsStats wants.
func int64Field(read func(jobs.StatsSnapshot) int) func(jobs.StatsSnapshot) int64 {
	return func(st jobs.StatsSnapshot) int64 { return int64(read(st)) }
}

// handleMetrics serves the Prometheus text exposition format: every expvar
// counter of the "hsfsimd" map, the service's latency histograms, and
// runtime gauges. Counter metrics are process-global (matching /debug/vars);
// histograms are scoped to this service instance.
func (s *service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.PrometheusContentType)

	telemetry.WriteInfoGauge(w, "hsfsimd_build_info",
		"Build and runtime properties of this daemon; value is always 1.",
		[][2]string{
			{"go_version", runtime.Version()},
			{"kernel_isa", statevec.KernelISA()},
		})
	telemetry.WriteCounter(w, "hsfsimd_requests_total",
		"HTTP requests received across all endpoints.", metricRequests.Value())
	telemetry.WriteCounter(w, "hsfsimd_simulations_total",
		"Simulations completed successfully.", metricSimulations.Value())
	telemetry.WriteCounter(w, "hsfsimd_paths_simulated_total",
		"Feynman path leaves simulated locally.", metricPathsSimulated.Value())
	telemetry.WriteCounter(w, "hsfsimd_shed_429_total",
		"Requests shed by the concurrency limiter.", metricShed429.Value())
	telemetry.WriteGauge(w, "hsfsimd_in_flight",
		"Simulation requests currently executing.", float64(metricInFlight.Value()))
	telemetry.WriteCounter(w, "hsfsimd_worker_runs_total",
		"Distributed leases served as a worker.", metricWorkerRuns.Value())

	telemetry.WriteCounter(w, "hsfsimd_dist_leases_granted_total",
		"Distributed leases granted by coordinators.",
		sumDistStats(func(st *dist.Stats) int64 { return st.LeasesGranted.Load() }))
	telemetry.WriteCounter(w, "hsfsimd_dist_lease_reassignments_total",
		"Leases reassigned after worker failure or stall.",
		sumDistStats(func(st *dist.Stats) int64 { return st.LeasesReassigned.Load() }))
	telemetry.WriteCounter(w, "hsfsimd_dist_workers_retired_total",
		"Workers retired after repeated lease failures.",
		sumDistStats(func(st *dist.Stats) int64 { return st.WorkersRetired.Load() }))
	telemetry.WriteCounter(w, "hsfsimd_dist_prefixes_merged_total",
		"Prefix tasks merged into coordinator state.",
		sumDistStats(func(st *dist.Stats) int64 { return st.PrefixesMerged.Load() }))
	telemetry.WriteCounter(w, "hsfsimd_dist_paths_simulated_total",
		"Feynman path leaves merged from distributed workers.",
		sumDistStats(func(st *dist.Stats) int64 { return st.PathsSimulated.Load() }))
	telemetry.WriteGauge(w, "hsfsimd_dist_leases_in_flight",
		"Distributed leases currently executing.",
		float64(sumDistStats(func(st *dist.Stats) int64 { return st.InFlightLeases.Load() })))
	telemetry.WriteCounter(w, "hsfsimd_dist_leases_stolen_total",
		"Leases created by stealing from slow or leaving workers.",
		sumDistStats(func(st *dist.Stats) int64 { return st.LeasesStolen.Load() }))
	telemetry.WriteCounter(w, "hsfsimd_dist_leases_resplit_total",
		"In-flight leases split so part could be re-leased.",
		sumDistStats(func(st *dist.Stats) int64 { return st.LeasesResplit.Load() }))
	telemetry.WriteCounter(w, "hsfsimd_dist_partial_returns_total",
		"Successful lease replies covering fewer prefixes than leased.",
		sumDistStats(func(st *dist.Stats) int64 { return st.PartialReturns.Load() }))
	telemetry.WriteCounter(w, "hsfsimd_dist_partials_duplicate_total",
		"Returned partials dropped by exactly-once dedup.",
		sumDistStats(func(st *dist.Stats) int64 { return st.PartialsDuplicate.Load() }))
	telemetry.WriteCounter(w, "hsfsimd_dist_store_flushes_total",
		"Merged checkpoints flushed to durable storage.",
		sumDistStats(func(st *dist.Stats) int64 { return st.StoreFlushes.Load() }))
	telemetry.WriteCounter(w, "hsfsimd_dist_workers_joined_total",
		"Workers admitted into runs after they started.",
		sumDistStats(func(st *dist.Stats) int64 { return st.WorkersJoined.Load() }))
	telemetry.WriteCounter(w, "hsfsimd_dist_workers_left_total",
		"Workers that dropped out of running rotations.",
		sumDistStats(func(st *dist.Stats) int64 { return st.WorkersLeft.Load() }))

	jst := s.jobs.Stats()
	telemetry.WriteGauge(w, "hsfsimd_jobs_queued",
		"Jobs waiting in the async queue.", float64(jst.Queued))
	telemetry.WriteGauge(w, "hsfsimd_jobs_queue_capacity",
		"Capacity of the async job queue.", float64(jst.QueueCap))
	telemetry.WriteGauge(w, "hsfsimd_jobs_running",
		"Jobs currently executing.", float64(jst.Running))
	telemetry.WriteCounter(w, "hsfsimd_jobs_submitted_total",
		"Jobs admitted into the queue.", jst.Submitted)
	telemetry.WriteCounter(w, "hsfsimd_jobs_completed_total",
		"Jobs finished successfully.", jst.Completed)
	telemetry.WriteCounter(w, "hsfsimd_jobs_failed_total",
		"Jobs that ended in failure.", jst.Failed)
	telemetry.WriteCounter(w, "hsfsimd_jobs_cancelled_total",
		"Jobs cancelled by callers.", jst.Cancelled)
	telemetry.WriteCounter(w, "hsfsimd_jobs_resumed_total",
		"Jobs resumed from durable checkpoints after a restart.", jst.Resumed)
	telemetry.WriteCounter(w, "hsfsimd_jobs_batches_total",
		"Walks executed by the job runner pool.", jst.Batches)
	telemetry.WriteCounter(w, "hsfsimd_jobs_batched_total",
		"Jobs that shared a walk with at least one other job.", jst.BatchedJobs)
	telemetry.WriteCounter(w, "hsfsimd_jobs_plan_cache_hits_total",
		"Plan-cache hits (a compiled plan was reused).", jst.PlanHits)
	telemetry.WriteCounter(w, "hsfsimd_jobs_plan_cache_misses_total",
		"Plan-cache misses (a plan was compiled).", jst.PlanMisses)
	telemetry.WriteCounter(w, "hsfsimd_jobs_plan_cache_evictions_total",
		"Compiled plans evicted from the LRU.", jst.PlanEvictions)
	telemetry.WriteHistogramSnapshot(w, "hsfsimd_jobs_queue_wait_seconds",
		"Time jobs spent queued before their walk started.", jst.QueueWait)
	telemetry.WriteHistogramSnapshot(w, "hsfsimd_jobs_batch_duration_seconds",
		"Wall time of executed job batches.", jst.BatchDurations)
	writeTenantMetrics(w, s.jobs.TenantStats())

	telemetry.WriteHistogram(w, "hsfsimd_leaf_latency_seconds",
		"Sampled per-leaf latency (segment sweep + accumulate) of local runs.",
		&s.leafLatency)
	telemetry.WriteHistogram(w, "hsfsimd_segment_sweep_seconds",
		"Sampled segment sweep durations of local runs.", &s.segmentSweep)
	telemetry.WriteHistogram(w, "hsfsimd_dist_lease_duration_seconds",
		"Durations of distributed leases dispatched by this coordinator.",
		&s.leaseDurations)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	telemetry.WriteGauge(w, "hsfsimd_heap_alloc_bytes",
		"Bytes of allocated heap objects.", float64(ms.HeapAlloc))
	telemetry.WriteGauge(w, "hsfsimd_heap_sys_bytes",
		"Heap memory obtained from the OS.", float64(ms.HeapSys))
	telemetry.WriteGauge(w, "hsfsimd_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.", float64(ms.PauseTotalNs)/1e9)
	telemetry.WriteCounter(w, "hsfsimd_gc_cycles_total",
		"Completed GC cycles.", int64(ms.NumGC))
	telemetry.WriteGauge(w, "hsfsimd_goroutines",
		"Current number of goroutines.", float64(runtime.NumGoroutine()))
	_, _ = fmt.Fprintf(w, "")
}

// writeTenantMetrics emits the per-tenant job families. They use distinct
// metric names from the unlabeled hsfsimd_jobs_* aggregates (a family may not
// appear twice in one exposition), and their cardinality is bounded by the
// manager's tenant-label cap — overflow tenants collapse into "_other".
func writeTenantMetrics(w http.ResponseWriter, rows []jobs.TenantStats) {
	if len(rows) == 0 {
		return
	}
	series := func(read func(jobs.TenantStats) float64) []telemetry.LabeledValue {
		out := make([]telemetry.LabeledValue, len(rows))
		for i, row := range rows {
			out[i] = telemetry.LabeledValue{Label: row.Tenant, Value: read(row)}
		}
		return out
	}
	telemetry.WriteLabeledGauge(w, "hsfsimd_jobs_tenant_queued",
		"Jobs waiting in the async queue, by tenant.", "tenant",
		series(func(r jobs.TenantStats) float64 { return float64(r.Queued) }))
	telemetry.WriteLabeledGauge(w, "hsfsimd_jobs_tenant_running",
		"Jobs currently executing, by tenant.", "tenant",
		series(func(r jobs.TenantStats) float64 { return float64(r.Running) }))
	telemetry.WriteLabeledGauge(w, "hsfsimd_jobs_tenant_queue_age_seconds",
		"Age of the oldest queued job, by tenant (0 when none queued).", "tenant",
		series(func(r jobs.TenantStats) float64 { return r.OldestQueuedAgeSeconds }))
	telemetry.WriteLabeledCounter(w, "hsfsimd_jobs_tenant_submitted_total",
		"Jobs admitted into the queue, by tenant.", "tenant",
		series(func(r jobs.TenantStats) float64 { return float64(r.Submitted) }))
	telemetry.WriteLabeledCounter(w, "hsfsimd_jobs_tenant_completed_total",
		"Jobs finished successfully, by tenant.", "tenant",
		series(func(r jobs.TenantStats) float64 { return float64(r.Completed) }))
	telemetry.WriteLabeledCounter(w, "hsfsimd_jobs_tenant_failed_total",
		"Jobs that ended in failure, by tenant.", "tenant",
		series(func(r jobs.TenantStats) float64 { return float64(r.Failed) }))
	telemetry.WriteLabeledCounter(w, "hsfsimd_jobs_tenant_cancelled_total",
		"Jobs cancelled by callers, by tenant.", "tenant",
		series(func(r jobs.TenantStats) float64 { return float64(r.Cancelled) }))
}

// mergeRunTelemetry folds one request-scoped recorder's histograms into the
// service-level histograms /metrics exposes.
func (s *service) mergeRunTelemetry(rec *telemetry.Recorder) {
	s.leafLatency.Merge(rec.LeafLatency.Snapshot())
	s.segmentSweep.Merge(rec.SegmentSweep.Snapshot())
}
