// Runtime metrics. Counters are process-global expvar values published once
// under the "hsfsimd" map and served at GET /debug/vars through the standard
// expvar handler; /readyz echoes the load-relevant subset so probes see them
// without parsing the full dump. Multiple service instances in one process
// (tests) share the counters — they describe the process, not one handler
// tree.
package server

import (
	"expvar"

	"hsfsim/internal/dist"
)

// distStats is shared by every coordinator in the process so lease metrics
// aggregate across services.
var distStats dist.Stats

var (
	metricRequests       = new(expvar.Int) // HTTP requests received (all endpoints)
	metricSimulations    = new(expvar.Int) // /simulate runs completed successfully
	metricPathsSimulated = new(expvar.Int) // Feynman path leaves across local simulations
	metricShed429        = new(expvar.Int) // requests shed by the concurrency limiter
	metricInFlight       = new(expvar.Int) // simulation requests currently executing
	metricWorkerRuns     = new(expvar.Int) // /dist/run leases served as a worker
)

func init() {
	m := expvar.NewMap("hsfsimd")
	m.Set("requests_total", metricRequests)
	m.Set("simulations_total", metricSimulations)
	m.Set("paths_simulated_total", metricPathsSimulated)
	m.Set("shed_429_total", metricShed429)
	m.Set("in_flight", metricInFlight)
	m.Set("worker_runs_total", metricWorkerRuns)
	m.Set("dist_leases_granted_total", expvar.Func(func() any { return distStats.LeasesGranted.Load() }))
	m.Set("dist_lease_reassignments_total", expvar.Func(func() any { return distStats.LeasesReassigned.Load() }))
	m.Set("dist_workers_retired_total", expvar.Func(func() any { return distStats.WorkersRetired.Load() }))
	m.Set("dist_prefixes_merged_total", expvar.Func(func() any { return distStats.PrefixesMerged.Load() }))
	m.Set("dist_paths_simulated_total", expvar.Func(func() any { return distStats.PathsSimulated.Load() }))
	m.Set("dist_leases_in_flight", expvar.Func(func() any { return distStats.InFlightLeases.Load() }))
}
