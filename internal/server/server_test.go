package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"hsfsim/internal/cut"
)

const bellQASM = `OPENQASM 2.0;
qreg q[2];
h q[0];
cx q[0],q[1];
`

const cascadeQASM = `OPENQASM 2.0;
qreg q[6];
rzz(0.3) q[2],q[3];
rzz(0.5) q[2],q[4];
rzz(0.7) q[2],q[5];
`

func post(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestAnalyzeCascade(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	cutPos := 2
	resp := post(t, srv, "/analyze", AnalyzeRequest{QASM: cascadeQASM, CutPos: &cutPos})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var s cut.Summary
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.NumPaths != 2 || s.NumBlocks != 1 {
		t.Fatalf("summary: %+v", s)
	}
}

func TestSimulateBellAllMethods(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	for _, method := range []string{"schrodinger", "standard", "joint"} {
		cutPos := 0
		resp := post(t, srv, "/simulate", SimulateRequest{QASM: bellQASM, Method: method, CutPos: &cutPos})
		var out SimulateResponse
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", method, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.NumQubits != 2 || len(out.Amplitudes) != 4 {
			t.Fatalf("%s: response %+v", method, out)
		}
		want := math.Sqrt2 / 2
		if math.Abs(out.Amplitudes[0].Re-want) > 1e-9 || math.Abs(out.Amplitudes[3].Re-want) > 1e-9 {
			t.Fatalf("%s: Bell amplitudes wrong: %+v", method, out.Amplitudes)
		}
	}
}

func TestSimulateAmplitudeCap(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	// 14 qubits = 16384 amplitudes > MaxReturnedAmplitudes.
	qasm := "qreg q[14]; h q[0];"
	resp := post(t, srv, "/simulate", SimulateRequest{QASM: qasm, Method: "schrodinger"})
	defer resp.Body.Close()
	var out SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Truncated || len(out.Amplitudes) != MaxReturnedAmplitudes {
		t.Fatalf("cap not applied: %d amplitudes, truncated=%v", len(out.Amplitudes), out.Truncated)
	}
	if out.AmplitudesTotal != 1<<14 {
		t.Fatalf("total = %d", out.AmplitudesTotal)
	}
}

func TestErrorPaths(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()

	cases := []struct {
		path string
		body any
		want int
	}{
		{"/simulate", SimulateRequest{QASM: "", Method: "joint"}, http.StatusBadRequest},
		{"/simulate", SimulateRequest{QASM: "garbage", Method: "joint"}, http.StatusBadRequest},
		{"/simulate", SimulateRequest{QASM: bellQASM, Method: "nope"}, http.StatusBadRequest},
		{"/simulate", SimulateRequest{QASM: bellQASM, Method: "joint", Strategy: "bogus"}, http.StatusBadRequest},
		{"/analyze", AnalyzeRequest{QASM: ""}, http.StatusBadRequest},
		{"/analyze", AnalyzeRequest{QASM: bellQASM, CutPos: intp(7)}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp := post(t, srv, c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s %+v: status %d, want %d", c.path, c.body, resp.StatusCode, c.want)
		}
		var e errorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Errorf("%s: missing error body", c.path)
		}
		resp.Body.Close()
	}

	// GET on a POST endpoint.
	resp, err := http.Get(srv.URL + "/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /simulate: status %d", resp.StatusCode)
	}

	// Unknown fields are rejected.
	raw, _ := json.Marshal(map[string]any{"qasm": bellQASM, "bogus_field": 1})
	resp2, err := http.Post(srv.URL+"/analyze", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp2.StatusCode)
	}
}

func TestSimulateTimeout(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	// Dense crossing structure + 1ms timeout.
	qasm := "qreg q[12];\n"
	for i := 0; i < 12; i++ {
		qasm += "h q[" + string(rune('0'+i%6)) + "];\n"
	}
	qasm = "qreg q[12];\n"
	for a := 0; a < 6; a++ {
		for b := 6; b < 12; b++ {
			qasm += qasmf("rzz(0.3) q[%d],q[%d];\n", a, b)
			qasm += qasmf("rx(0.2) q[%d];\n", a)
		}
	}
	resp := post(t, srv, "/simulate", SimulateRequest{QASM: qasm, Method: "standard", TimeoutMillis: 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408", resp.StatusCode)
	}
}

func intp(v int) *int { return &v }

func qasmf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
