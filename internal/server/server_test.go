package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hsfsim/internal/cut"
)

const bellQASM = `OPENQASM 2.0;
qreg q[2];
h q[0];
cx q[0],q[1];
`

const cascadeQASM = `OPENQASM 2.0;
qreg q[6];
rzz(0.3) q[2],q[3];
rzz(0.5) q[2],q[4];
rzz(0.7) q[2],q[5];
`

func post(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestAnalyzeCascade(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	cutPos := 2
	resp := post(t, srv, "/analyze", AnalyzeRequest{QASM: cascadeQASM, CutPos: &cutPos})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var s cut.Summary
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.NumPaths != 2 || s.NumBlocks != 1 {
		t.Fatalf("summary: %+v", s)
	}
}

func TestSimulateBellAllMethods(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	for _, method := range []string{"schrodinger", "standard", "joint"} {
		cutPos := 0
		resp := post(t, srv, "/simulate", SimulateRequest{QASM: bellQASM, Method: method, CutPos: &cutPos})
		var out SimulateResponse
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", method, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if out.NumQubits != 2 || len(out.Amplitudes) != 4 {
			t.Fatalf("%s: response %+v", method, out)
		}
		want := math.Sqrt2 / 2
		if math.Abs(out.Amplitudes[0].Re-want) > 1e-9 || math.Abs(out.Amplitudes[3].Re-want) > 1e-9 {
			t.Fatalf("%s: Bell amplitudes wrong: %+v", method, out.Amplitudes)
		}
	}
}

func TestSimulateAmplitudeCap(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	// 14 qubits = 16384 amplitudes > MaxReturnedAmplitudes.
	qasm := "qreg q[14]; h q[0];"
	resp := post(t, srv, "/simulate", SimulateRequest{QASM: qasm, Method: "schrodinger"})
	defer resp.Body.Close()
	var out SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Truncated || len(out.Amplitudes) != MaxReturnedAmplitudes {
		t.Fatalf("cap not applied: %d amplitudes, truncated=%v", len(out.Amplitudes), out.Truncated)
	}
	if out.AmplitudesTotal != 1<<14 {
		t.Fatalf("total = %d", out.AmplitudesTotal)
	}
}

func TestErrorPaths(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()

	cases := []struct {
		path string
		body any
		want int
	}{
		{"/simulate", SimulateRequest{QASM: "", Method: "joint"}, http.StatusBadRequest},
		{"/simulate", SimulateRequest{QASM: "garbage", Method: "joint"}, http.StatusBadRequest},
		{"/simulate", SimulateRequest{QASM: bellQASM, Method: "nope"}, http.StatusBadRequest},
		{"/simulate", SimulateRequest{QASM: bellQASM, Method: "joint", Strategy: "bogus"}, http.StatusBadRequest},
		{"/analyze", AnalyzeRequest{QASM: ""}, http.StatusBadRequest},
		{"/analyze", AnalyzeRequest{QASM: bellQASM, CutPos: intp(7)}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp := post(t, srv, c.path, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s %+v: status %d, want %d", c.path, c.body, resp.StatusCode, c.want)
		}
		var e errorBody
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
			t.Errorf("%s: missing error body", c.path)
		}
		resp.Body.Close()
	}

	// GET on a POST endpoint.
	resp, err := http.Get(srv.URL + "/simulate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /simulate: status %d", resp.StatusCode)
	}

	// Unknown fields are rejected.
	raw, _ := json.Marshal(map[string]any{"qasm": bellQASM, "bogus_field": 1})
	resp2, err := http.Post(srv.URL+"/analyze", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp2.StatusCode)
	}
}

func TestSimulateTimeout(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	// Dense crossing structure + 1ms timeout.
	qasm := "qreg q[12];\n"
	for i := 0; i < 12; i++ {
		qasm += "h q[" + string(rune('0'+i%6)) + "];\n"
	}
	qasm = "qreg q[12];\n"
	for a := 0; a < 6; a++ {
		for b := 6; b < 12; b++ {
			qasm += qasmf("rzz(0.3) q[%d],q[%d];\n", a, b)
			qasm += qasmf("rx(0.2) q[%d];\n", a)
		}
	}
	resp := post(t, srv, "/simulate", SimulateRequest{QASM: qasm, Method: "standard", TimeoutMillis: 1})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408", resp.StatusCode)
	}
}

func intp(v int) *int { return &v }

func qasmf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

// heavyQASM has 36 separate rank-2 cuts (2^36 paths): effectively unbounded
// runtime, so tests can hold a request in flight deterministically.
func heavyQASM() string {
	q := "qreg q[12];\n"
	for a := 0; a < 6; a++ {
		for b := 6; b < 12; b++ {
			q += qasmf("rzz(0.3) q[%d],q[%d];\n", a, b)
			q += qasmf("rx(0.2) q[%d];\n", a)
		}
	}
	return q
}

func TestCutPosValidation(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()

	// A 1-qubit circuit cannot be bipartitioned: the default cut must be
	// rejected with a clear 422, not a confusing "degenerate partition".
	resp := post(t, srv, "/simulate", SimulateRequest{QASM: "qreg q[1]; h q[0];", Method: "joint"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("1-qubit joint: status %d, want 422", resp.StatusCode)
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "at least 2 qubits") {
		t.Fatalf("unhelpful error: %q", e.Error)
	}

	// The 2-qubit default (n/2-1 = 0) is valid and must simulate fine.
	resp2 := post(t, srv, "/simulate", SimulateRequest{QASM: bellQASM, Method: "joint"})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("2-qubit default cut: status %d, want 200", resp2.StatusCode)
	}

	// Explicit out-of-range cut positions are 422 with the range echoed.
	for _, pos := range []int{-1, 1, 7} {
		resp := post(t, srv, "/simulate", SimulateRequest{QASM: bellQASM, Method: "joint", CutPos: intp(pos)})
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("cut_pos %d: status %d, want 422", pos, resp.StatusCode)
		}
	}
	// /analyze shares the validation.
	resp3 := post(t, srv, "/analyze", AnalyzeRequest{QASM: "qreg q[1]; h q[0];"})
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("1-qubit analyze: status %d, want 422", resp3.StatusCode)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp := post(t, srv, "/simulate", SimulateRequest{QASM: "garbage", Method: "joint"})
	defer resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("missing X-Request-Id header")
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID != id {
		t.Fatalf("envelope request_id %q != header %q", e.RequestID, id)
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	s := &service{cfg: Config{}.withDefaults()}
	s.cfg.Logger = log.New(io.Discard, "", 0)
	h := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/simulate", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var e errorBody
	if err := json.NewDecoder(rec.Body).Decode(&e); err != nil {
		t.Fatalf("panic response is not a JSON envelope: %v", err)
	}
	if e.Error == "" || e.RequestID == "" {
		t.Fatalf("envelope incomplete: %+v", e)
	}
}

func TestBudgetRejection(t *testing.T) {
	srv := httptest.NewServer(NewWithConfig(Config{MaxPaths: 4}))
	defer srv.Close()
	resp := post(t, srv, "/simulate", SimulateRequest{QASM: heavyQASM(), Method: "standard", CutPos: intp(5)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	var e errorBody
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "budget") {
		t.Fatalf("budget error not surfaced: %q (%v)", e.Error, err)
	}
}

// TestLimiterShedsLoad holds one request in flight on a capacity-1 server
// and checks that the second is shed with 429 + Retry-After while /readyz
// reports saturation; canceling the first request frees the slot.
func TestLimiterShedsLoad(t *testing.T) {
	srv := httptest.NewServer(NewWithConfig(Config{
		MaxConcurrent: 1,
		Logger:        log.New(io.Discard, "", 0),
	}))
	defer srv.Close()

	body, _ := json.Marshal(SimulateRequest{QASM: heavyQASM(), Method: "standard", CutPos: intp(5), TimeoutMillis: 60000})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/simulate", bytes.NewReader(body))
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Wait for the first request to occupy the slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		var rb readyBody
		if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
			t.Fatal(err)
		}
		saturated := resp.StatusCode == http.StatusServiceUnavailable && rb.Status == "saturated"
		resp.Body.Close()
		if saturated {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("limiter never saturated")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The second simulation is shed immediately.
	resp := post(t, srv, "/simulate", SimulateRequest{QASM: bellQASM, Method: "joint", CutPos: intp(0)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}

	// Canceling the in-flight request releases the slot: the engine observes
	// the dropped connection and /readyz recovers.
	cancel()
	<-firstDone
	deadline = time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		ready := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never released after client cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReadyzIdle(t *testing.T) {
	srv := httptest.NewServer(New())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var rb readyBody
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	if rb.Status != "ready" || rb.InFlight != 0 || rb.Capacity <= 0 {
		t.Fatalf("readyz: %+v", rb)
	}
}
