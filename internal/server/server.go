// Package server exposes the simulator over HTTP with a JSON API:
//
//	POST /analyze       — cut-plan summary for a QASM circuit
//	POST /simulate      — run one of the three methods on a QASM circuit
//	                      ("distribute": true fans out over registered workers)
//	POST /jobs          — enqueue an async multi-tenant job (see jobs.go)
//	GET  /jobs/…        — job status, results, cancellation, SSE streaming
//	POST /dist/run      — worker endpoint: execute one prefix-batch lease
//	POST /dist/register — worker heartbeat: join this coordinator's fleet
//	GET  /dist/workers  — list the live worker fleet
//	GET  /healthz       — liveness
//	GET  /readyz        — readiness / saturation of the simulation limiter
//	GET  /debug/vars    — expvar runtime metrics
//	GET  /metrics       — Prometheus text exposition (counters + histograms)
//
// The handlers are plain net/http so the service embeds anywhere; cmd/hsfsimd
// wraps them in a binary.
//
// Resilience: every request gets an ID (echoed in the X-Request-Id header,
// error envelopes, and logs), panics become 500 JSON envelopes, simulation
// endpoints run under a semaphore that sheds load with 429 + Retry-After
// when saturated, per-request deadlines derive from timeout_ms through the
// request context, and admission control rejects over-budget jobs with 422
// before allocating. /dist/run runs under the same limiter, deadlines, and
// panic middleware, so a daemon in worker mode keeps its protections.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hsfsim"
	"hsfsim/internal/dist"
	"hsfsim/internal/hsf"
	"hsfsim/internal/jobs"
	"hsfsim/internal/qasm"
	"hsfsim/internal/telemetry"
	"hsfsim/internal/telemetry/trace"
)

// MaxRequestBytes bounds the accepted QASM payload.
const MaxRequestBytes = 4 << 20

// MaxReturnedAmplitudes bounds the amplitudes echoed back per request.
const MaxReturnedAmplitudes = 4096

// StatusClientClosedRequest is the nonstandard (nginx-convention) status
// logged when the client goes away mid-simulation.
const StatusClientClosedRequest = 499

// Config tunes the service; the zero value selects production defaults.
type Config struct {
	// MaxConcurrent bounds simultaneous /simulate + /analyze requests;
	// excess requests are shed with 429 + Retry-After. 0 selects
	// 2×GOMAXPROCS; negative disables the limiter.
	MaxConcurrent int
	// MemoryBudget and MaxPaths are passed through to the simulator's
	// admission gate (see hsfsim.Options); over-budget jobs get 422.
	MemoryBudget int64
	MaxPaths     uint64
	// MaxTimeout caps the per-request timeout_ms (0: 10 minutes).
	MaxTimeout time.Duration
	// Workers bounds simulation parallelism per request (0: all CPUs).
	Workers int
	// Backend is the default HSF walker backend ("", "dense", or "dd") for
	// requests that do not name one. A request's explicit "backend" field
	// wins. Every member of a distributed fleet must run the same backend.
	Backend string
	// Logger receives request logs (nil: log.Default()).
	Logger *log.Logger
	// DistLeaseTimeout bounds one distributed lease when this service acts
	// as a coordinator (0: the dist default, 2 minutes).
	DistLeaseTimeout time.Duration
	// WorkerTTL is how long a /dist/register heartbeat keeps a worker in the
	// fleet (0: 1 minute).
	WorkerTTL time.Duration
	// HeartbeatInterval is the re-registration cadence advertised to workers;
	// it must stay below WorkerTTL (0: WorkerTTL/3).
	HeartbeatInterval time.Duration
	// DistMaxStrikes is the consecutive-failure count that retires a worker
	// from a run (0: the dist default, 3).
	DistMaxStrikes int
	// DistJoinGrace keeps a run with unfinished work alive this long after
	// the whole fleet died, waiting for replacements to join (0: fail
	// immediately).
	DistJoinGrace time.Duration

	// JobStoreDir, when set, makes the async job service durable: manifests,
	// mid-run checkpoints, and results persist there, and a restarted daemon
	// re-offers unfinished jobs. Empty keeps jobs in memory only.
	JobStoreDir string
	// JobRunners bounds concurrent job batch executions (0: 2).
	JobRunners int
	// JobQueueCap bounds queued jobs; submissions beyond it are shed with
	// 429 + Retry-After (0: 256).
	JobQueueCap int
	// TenantQuota caps one tenant's outstanding (queued + running) jobs;
	// 0 means unlimited. TenantQuotas overrides it per tenant.
	TenantQuota  int
	TenantQuotas map[string]int
	// JobFlushInterval rate-limits mid-run job checkpoint flushes (0: 2s).
	JobFlushInterval time.Duration

	// TraceCapacity sizes the service's span flight recorder, in events
	// (0: the trace package default; negative: tracing disabled). The
	// recorder is fixed-memory and oldest-evicted, so it is safe to leave
	// on in production; /debug/trace serves its contents.
	TraceCapacity int
}

// Validate reports whether the configuration would be rejected by the
// coordinator (e.g. a worker TTL at or below the heartbeat interval); the
// returned error is dist's typed *ConfigError. NewService panics on an
// invalid Config, so daemons validate first to fail their flags cleanly.
func (c Config) Validate() error {
	return c.withDefaults().distConfig(nil, nil).Validate()
}

// distConfig derives the coordinator configuration from the service's.
func (c Config) distConfig(stats *dist.Stats, onLease func(telemetry.LeaseEvent)) dist.Config {
	return dist.Config{
		Transport:         &dist.HTTPTransport{},
		LeaseTimeout:      c.DistLeaseTimeout,
		WorkerTTL:         c.WorkerTTL,
		HeartbeatInterval: c.HeartbeatInterval,
		MaxStrikes:        c.DistMaxStrikes,
		JoinGrace:         c.DistJoinGrace,
		Logger:            c.Logger,
		Stats:             stats,
		OnLease:           onLease,
	}
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// AnalyzeRequest is the /analyze payload.
type AnalyzeRequest struct {
	QASM           string `json:"qasm"`
	CutPos         *int   `json:"cut_pos,omitempty"` // default n/2-1
	Strategy       string `json:"strategy,omitempty"`
	MaxBlockQubits int    `json:"max_block_qubits,omitempty"`
}

// SimulateRequest is the /simulate payload.
type SimulateRequest struct {
	QASM           string `json:"qasm"`
	Method         string `json:"method"` // schrodinger | standard | joint
	CutPos         *int   `json:"cut_pos,omitempty"`
	MaxAmplitudes  int    `json:"max_amplitudes,omitempty"`
	Strategy       string `json:"strategy,omitempty"`
	MaxBlockQubits int    `json:"max_block_qubits,omitempty"`
	TimeoutMillis  int    `json:"timeout_ms,omitempty"`
	// Backend selects the HSF walker backend: "dense" (default) or "dd".
	// Ignored by the schrodinger method. Distributed runs forward it to
	// every worker; workers predating the field reject such leases, so a
	// mixed-version fleet cannot silently split a run across backends.
	Backend string `json:"backend,omitempty"`
	// Distribute fans the run out over the registered worker fleet instead of
	// simulating locally. Requires an HSF method and at least one worker
	// (503 otherwise).
	Distribute bool `json:"distribute,omitempty"`
}

// Amplitude is one complex amplitude in the response.
type Amplitude struct {
	Re float64 `json:"re"`
	Im float64 `json:"im"`
}

// SimulateResponse is the /simulate reply.
type SimulateResponse struct {
	Method          string      `json:"method"`
	NumQubits       int         `json:"num_qubits"`
	NumPaths        uint64      `json:"num_paths"`
	Log2Paths       float64     `json:"log2_paths"`
	NumCuts         int         `json:"num_cuts"`
	NumBlocks       int         `json:"num_blocks"`
	PreprocessMs    float64     `json:"preprocess_ms"`
	SimMs           float64     `json:"sim_ms"`
	PathsSimulated  int64       `json:"paths_simulated"`
	Amplitudes      []Amplitude `json:"amplitudes"`
	AmplitudesTotal int         `json:"amplitudes_total"`
	Truncated       bool        `json:"truncated"`
	// Distributed-run statistics (distribute: true only).
	Distributed   bool  `json:"distributed,omitempty"`
	DistWorkers   int   `json:"dist_workers,omitempty"`
	DistBatches   int   `json:"dist_batches,omitempty"`
	Reassignments int64 `json:"dist_reassignments,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// readyBody is the /readyz reply. Beyond the readiness verdict it echoes the
// load-relevant expvar counters so probes see them without parsing
// /debug/vars.
type readyBody struct {
	Status   string `json:"status"` // "ready" | "saturated" | "draining"
	InFlight int64  `json:"in_flight"`
	Capacity int    `json:"capacity"`
	Workers  int    `json:"dist_workers"`
	Draining bool   `json:"draining,omitempty"`

	// Job-queue saturation: depth against capacity, plus the live run count.
	// A full queue flips the verdict to "saturated" just like a full limiter
	// — the next submission would be shed, so load balancers should back off.
	JobsQueued   int   `json:"jobs_queued"`
	JobsQueueCap int   `json:"jobs_queue_cap"`
	JobsRunning  int64 `json:"jobs_running"`

	RequestsTotal       int64 `json:"requests_total"`
	SimulationsTotal    int64 `json:"simulations_total"`
	PathsSimulatedTotal int64 `json:"paths_simulated_total"`
	Shed429Total        int64 `json:"shed_429_total"`
	WorkerRunsTotal     int64 `json:"worker_runs_total"`
	LeaseReassignments  int64 `json:"dist_lease_reassignments_total"`
	LeasesStolen        int64 `json:"dist_leases_stolen_total"`
	LeasesResplit       int64 `json:"dist_leases_resplit_total"`
	PartialReturns      int64 `json:"dist_partial_returns_total"`
	StoreFlushes        int64 `json:"dist_store_flushes_total"`
	WorkersJoined       int64 `json:"dist_workers_joined_total"`
	WorkersLeft         int64 `json:"dist_workers_left_total"`
}

type service struct {
	cfg      Config
	sem      chan struct{} // nil when the limiter is disabled
	inFlight atomic.Int64
	reqSeq   atomic.Uint64
	coord    *dist.Coordinator
	jobs     *jobs.Manager

	// drainCtx is canceled when the service starts draining: new leases are
	// refused with 503 and in-flight /dist/run leases are canceled so they
	// return their finished prefixes as partials.
	drainCtx    context.Context
	drainCancel context.CancelFunc

	// distStats is this coordinator's private lease-stats block; /debug/vars
	// aggregates across all services in the process, /readyz reads only ours.
	distStats *dist.Stats

	// Service-lifetime histograms served by /metrics; request-scoped recorders
	// merge into the first two, the coordinator's OnLease feeds the third.
	leafLatency    telemetry.Histogram
	segmentSweep   telemetry.Histogram
	leaseDurations telemetry.Histogram

	// trace is the process flight recorder behind /debug/trace; nil when
	// disabled, which every span call site tolerates.
	trace *trace.Recorder
}

// Service couples the HTTP handler tree with the fleet management the
// embedding binary needs (pinning static workers from the command line).
type Service struct {
	svc     *service
	handler http.Handler
}

// NewService builds the service and its handler tree. It panics on a Config
// the coordinator rejects; call Config.Validate first to get the typed error
// instead.
func NewService(cfg Config) *Service {
	s := newService(cfg)
	return &Service{svc: s, handler: s.routes()}
}

// Handler returns the HTTP handler tree.
func (s *Service) Handler() http.Handler { return s.handler }

// AddWorker pins a static distributed worker that never expires.
func (s *Service) AddWorker(addr string) { s.svc.coord.AddWorker(addr) }

// Workers returns the live distributed-worker fleet.
func (s *Service) Workers() []string { return s.svc.coord.Workers() }

// Coordinator exposes the service's coordinator for embedding binaries
// (durable takeover, chaos partitioning).
func (s *Service) Coordinator() *dist.Coordinator { return s.svc.coord }

// Drain puts the service into worker-drain mode: new /dist/run leases are
// refused with 503 and in-flight leases are canceled, which makes them
// return the prefixes they finished as valid partials instead of abandoning
// the work. Call it on SIGTERM before shutting the listener down.
func (s *Service) Drain() { s.svc.drainCancel() }

// Jobs exposes the async job manager for embedding binaries and tests.
func (s *Service) Jobs() *jobs.Manager { return s.svc.jobs }

// CloseJobs stops the job service: running walks are cancelled with their
// final checkpoints flushed to the store, and queued/running jobs stay in
// the store for the next start to re-offer. Call it on SIGTERM (after
// Drain) so a restarted daemon resumes instead of losing work; ctx bounds
// the wait for the runner pool.
func (s *Service) CloseJobs(ctx context.Context) error { return s.svc.jobs.Close(ctx) }

// New returns the HTTP handler tree with default configuration.
func New() http.Handler { return NewWithConfig(Config{}) }

// NewWithConfig returns the HTTP handler tree.
func NewWithConfig(cfg Config) http.Handler {
	return NewService(cfg).Handler()
}

func (s *service) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.Handle("/analyze", s.limited(s.handleAnalyze))
	mux.Handle("/simulate", s.limited(s.handleSimulate))
	// POST /jobs runs under the limiter because a cache-miss submission
	// compiles a plan synchronously; the read/stream endpoints stay outside
	// it (an SSE stream must not pin a simulation slot for its lifetime).
	mux.Handle("POST /jobs", s.limited(s.handleJobSubmit))
	mux.HandleFunc("GET /jobs", s.handleJobList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleJobCancel)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleJobEvents)
	mux.Handle("/dist/run", s.limited(s.handleDistRun))
	mux.HandleFunc("/dist/register", s.handleDistRegister)
	mux.HandleFunc("/dist/deregister", s.handleDistDeregister)
	mux.HandleFunc("/dist/workers", s.handleDistWorkers)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return s.instrument(mux)
}

func newService(cfg Config) *service {
	s := &service{cfg: cfg.withDefaults(), distStats: newDistStats()}
	if s.cfg.TraceCapacity >= 0 {
		s.trace = trace.NewRecorder(s.cfg.TraceCapacity)
	}
	if s.cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, s.cfg.MaxConcurrent)
	}
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	coord, err := dist.New(s.cfg.distConfig(s.distStats, func(ev telemetry.LeaseEvent) {
		s.leaseDurations.Observe(time.Duration(ev.DurMs * float64(time.Millisecond)))
	}))
	if err != nil {
		panic(fmt.Sprintf("server: %v", err))
	}
	s.coord = coord
	mgr, err := s.newJobsManager()
	if err != nil {
		panic(fmt.Sprintf("server: job service: %v", err))
	}
	s.jobs = mgr
	registerJobsManager(mgr)
	return s
}

// instrument assigns a request ID, opens the request span, and converts
// handler panics into 500 JSON envelopes instead of letting net/http kill
// the connection. An incoming X-Request-Id (a coordinator forwarding its
// own) is kept so worker logs correlate with the originating request, and
// an incoming traceparent header parents the request span, stitching
// worker-side spans into the coordinator's trace.
func (s *service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		metricRequests.Add(1)
		id := r.Header.Get("X-Request-Id")
		if id == "" || len(id) > 64 {
			id = fmt.Sprintf("req-%08x", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		ctx := withRequestID(r.Context(), id)
		var parent trace.SpanContext
		if v := r.Header.Get(trace.Header); v != "" {
			if sc, err := trace.ParseTraceparent(v); err == nil {
				parent = sc
			}
		}
		sp := s.trace.Start(parent, r.URL.Path)
		sp.SetStr("req", id)
		sp.SetStr("method", r.Method)
		defer sp.End()
		r = r.WithContext(trace.NewContext(ctx, s.trace, sp.Context()))
		defer func() {
			if rec := recover(); rec != nil {
				s.cfg.Logger.Printf("%s %s %s: panic: %v", id, r.Method, r.URL.Path, rec)
				writeErr(w, http.StatusInternalServerError,
					fmt.Errorf("internal error (request %s)", id), id)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleDebugTrace dumps the flight recorder as Chrome trace-event JSON,
// loadable in chrome://tracing or Perfetto. ?run= narrows the dump to one
// trace, addressed either by 32-hex trace ID or by any identifier a span
// carries as its "run", "req", or "job" attribute (distributed run IDs,
// request IDs, job IDs).
func (s *service) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if s.trace == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("tracing disabled"), requestID(r.Context()))
		return
	}
	events := s.trace.Snapshot()
	if q := r.URL.Query().Get("run"); q != "" {
		var id trace.TraceID
		found := false
		if err := id.UnmarshalHex(q); err == nil {
			found = true
		} else {
			for i := range events {
				ev := &events[i]
				if ev.Str("run") == q || ev.Str("req") == q || ev.Str("job") == q {
					id = ev.Trace
					found = true
					break
				}
			}
		}
		filtered := events[:0]
		for _, ev := range events {
			if ev.Trace == id {
				filtered = append(filtered, ev)
			}
		}
		events = filtered
		if !found || len(events) == 0 {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no recorded spans for %q", q), requestID(r.Context()))
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := trace.WriteChromeTrace(w, events); err != nil {
		s.cfg.Logger.Printf("%s /debug/trace: writing trace: %v", requestID(r.Context()), err)
	}
}

// limited wraps a simulation handler in the concurrency semaphore: requests
// beyond capacity are shed immediately with 429 + Retry-After so callers can
// back off instead of queueing into memory exhaustion.
func (s *service) limited(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				metricShed429.Add(1)
				// The backoff hint accounts for queued async work, not just
				// the in-flight requests: a saturated daemon with a deep job
				// queue will not have a free slot in one second.
				w.Header().Set("Retry-After", retryAfterSeconds(s.jobs.RetryAfter()))
				writeErr(w, http.StatusTooManyRequests,
					fmt.Errorf("server saturated: %d simulations in flight", s.inFlight.Load()),
					requestID(r.Context()))
				return
			}
		}
		s.inFlight.Add(1)
		metricInFlight.Add(1)
		defer func() {
			s.inFlight.Add(-1)
			metricInFlight.Add(-1)
		}()
		h(w, r)
	})
}

// Request IDs live in the trace package's context slot so the dist
// transport forwards them to workers without importing this package.
func withRequestID(ctx context.Context, id string) context.Context {
	return trace.WithRequestID(ctx, id)
}

func requestID(ctx context.Context) string {
	return trace.RequestID(ctx)
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReady reports limiter saturation: 200 while capacity remains, 503
// when every slot is taken (load balancers should stop routing here).
func (s *service) handleReady(w http.ResponseWriter, r *http.Request) {
	jdepth, jcap := s.jobs.QueueDepth()
	body := readyBody{
		Status:       "ready",
		InFlight:     s.inFlight.Load(),
		Capacity:     s.cfg.MaxConcurrent,
		Workers:      len(s.coord.Workers()),
		JobsQueued:   jdepth,
		JobsQueueCap: jcap,
		JobsRunning:  s.jobs.Stats().Running,

		RequestsTotal:       metricRequests.Value(),
		SimulationsTotal:    metricSimulations.Value(),
		PathsSimulatedTotal: metricPathsSimulated.Value(),
		Shed429Total:        metricShed429.Value(),
		WorkerRunsTotal:     metricWorkerRuns.Value(),
		LeaseReassignments:  s.distStats.LeasesReassigned.Load(),
		LeasesStolen:        s.distStats.LeasesStolen.Load(),
		LeasesResplit:       s.distStats.LeasesResplit.Load(),
		PartialReturns:      s.distStats.PartialReturns.Load(),
		StoreFlushes:        s.distStats.StoreFlushes.Load(),
		WorkersJoined:       s.distStats.WorkersJoined.Load(),
		WorkersLeft:         s.distStats.WorkersLeft.Load(),
	}
	code := http.StatusOK
	if s.sem != nil && len(s.sem) >= cap(s.sem) {
		body.Status = "saturated"
		code = http.StatusServiceUnavailable
	}
	if jdepth >= jcap {
		body.Status = "saturated"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds(s.jobs.RetryAfter()))
	}
	if s.drainCtx.Err() != nil {
		body.Status = "draining"
		body.Draining = true
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, code int, err error, reqID string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), RequestID: reqID})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *service) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"), requestID(r.Context()))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err), requestID(r.Context()))
		return false
	}
	return true
}

func parseCircuit(qasmSrc string) (*hsfsim.Circuit, error) {
	if strings.TrimSpace(qasmSrc) == "" {
		return nil, fmt.Errorf("empty qasm")
	}
	return qasm.Parse(strings.NewReader(qasmSrc))
}

// resolveBackend maps the request's backend name — falling back to the
// daemon's configured default — onto an HSF walker backend.
func (s *service) resolveBackend(name string) (hsfsim.Backend, error) {
	if name == "" {
		name = s.cfg.Backend
	}
	return hsfsim.ParseBackend(name)
}

func strategyOf(s string) (hsfsim.BlockStrategy, error) {
	switch s {
	case "", "cascade":
		return hsfsim.BlockCascade, nil
	case "window":
		return hsfsim.BlockWindow, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

// cutPosOf resolves the partition cut for an HSF request. The default is
// n/2-1; explicit positions must leave at least one qubit on each side. An
// error here is a client error (422): the circuit cannot be bipartitioned as
// requested.
func cutPosOf(req *int, numQubits int) (int, error) {
	if numQubits < 2 {
		return 0, fmt.Errorf("HSF methods need at least 2 qubits to bipartition (circuit has %d); use method \"schrodinger\"", numQubits)
	}
	if req == nil {
		return numQubits/2 - 1, nil
	}
	if *req < 0 || *req > numQubits-2 {
		return 0, fmt.Errorf("cut_pos %d out of range [0, %d] for %d qubits", *req, numQubits-2, numQubits)
	}
	return *req, nil
}

func (s *service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r.Context())
	var req AnalyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	c, err := parseCircuit(req.QASM)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err, reqID)
		return
	}
	strategy, err := strategyOf(req.Strategy)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err, reqID)
		return
	}
	cutPos, err := cutPosOf(req.CutPos, c.NumQubits)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err, reqID)
		return
	}
	sum, err := hsfsim.Analyze(c, cutPos, strategy, req.MaxBlockQubits)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err, reqID)
		return
	}
	writeJSON(w, sum)
}

// simulateOptions resolves a SimulateRequest into concrete run options; it
// is shared by /simulate and job submission so both admit identically. The
// returned status classifies a failure: 400 for a malformed request, 422
// when the circuit cannot be run as asked (e.g. an impossible cut).
func (s *service) simulateOptions(req *SimulateRequest, numQubits int) (hsfsim.Options, int, error) {
	backend, err := s.resolveBackend(req.Backend)
	if err != nil {
		return hsfsim.Options{}, http.StatusBadRequest, err
	}
	workers := s.cfg.Workers
	if !backend.ParallelWorkers() {
		// Config.Workers is daemon capacity, not a per-job demand: clamp it
		// for single-worker backends instead of rejecting the request.
		workers = 1
	}
	opts := hsfsim.Options{
		MaxAmplitudes:  req.MaxAmplitudes,
		Backend:        backend,
		MaxBlockQubits: req.MaxBlockQubits,
		Workers:        workers,
		MemoryBudget:   s.cfg.MemoryBudget,
		MaxPaths:       s.cfg.MaxPaths,
	}
	switch req.Method {
	case "schrodinger":
		opts.Method = hsfsim.Schrodinger
	case "standard":
		opts.Method = hsfsim.StandardHSF
	case "joint", "":
		opts.Method = hsfsim.JointHSF
	default:
		return hsfsim.Options{}, http.StatusBadRequest, fmt.Errorf("unknown method %q", req.Method)
	}
	if opts.BlockStrategy, err = strategyOf(req.Strategy); err != nil {
		return hsfsim.Options{}, http.StatusBadRequest, err
	}
	if opts.Method != hsfsim.Schrodinger {
		if opts.CutPos, err = cutPosOf(req.CutPos, numQubits); err != nil {
			return hsfsim.Options{}, http.StatusUnprocessableEntity, err
		}
	}
	return opts, 0, nil
}

func (s *service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r.Context())
	var req SimulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	c, err := parseCircuit(req.QASM)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err, reqID)
		return
	}
	if req.Distribute {
		s.handleDistributedSimulate(w, r, &req, c.NumQubits)
		return
	}
	opts, status, err := s.simulateOptions(&req, c.NumQubits)
	if err != nil {
		writeErr(w, status, err, reqID)
		return
	}

	// The request deadline rides on the request context: client disconnects
	// and timeout_ms both cancel the simulation cooperatively.
	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		d := time.Duration(req.TimeoutMillis) * time.Millisecond
		if s.cfg.MaxTimeout > 0 && d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, d, hsfsim.ErrTimeout)
		defer cancel()
	}

	// Request-scoped recorder: its sampled latency histograms merge into the
	// service-level /metrics histograms whether the run succeeds or not.
	rec := telemetry.New()
	opts.Telemetry = rec
	defer s.mergeRunTelemetry(rec)

	start := time.Now()
	res, err := hsfsim.SimulateContext(ctx, c, opts)
	if err != nil {
		s.writeSimulateErr(w, r, err, time.Since(start))
		return
	}

	metricSimulations.Add(1)
	metricPathsSimulated.Add(res.PathsSimulated)
	resp := SimulateResponse{
		Method:         res.Method.String(),
		NumQubits:      c.NumQubits,
		NumPaths:       res.NumPaths,
		Log2Paths:      res.Log2Paths,
		NumCuts:        res.NumCuts,
		NumBlocks:      res.NumBlocks,
		PreprocessMs:   float64(res.PreprocessTime.Microseconds()) / 1000,
		SimMs:          float64(res.SimTime.Microseconds()) / 1000,
		PathsSimulated: res.PathsSimulated,
	}
	resp.fillAmplitudes(res.Amplitudes)
	writeJSON(w, resp)
}

// fillAmplitudes copies amps into the response, truncating to the echo cap.
func (resp *SimulateResponse) fillAmplitudes(amps []complex128) {
	resp.AmplitudesTotal = len(amps)
	n := len(amps)
	if n > MaxReturnedAmplitudes {
		n = MaxReturnedAmplitudes
		resp.Truncated = true
	}
	resp.Amplitudes = make([]Amplitude, n)
	for i := 0; i < n; i++ {
		resp.Amplitudes[i] = Amplitude{Re: real(amps[i]), Im: imag(amps[i])}
	}
}

// handleDistributedSimulate fans the request out over the registered worker
// fleet through the coordinator. The wall-clock of the whole distributed run
// lands in sim_ms; preprocessing happens independently on every participant.
func (s *service) handleDistributedSimulate(w http.ResponseWriter, r *http.Request, req *SimulateRequest, numQubits int) {
	reqID := requestID(r.Context())
	method := req.Method
	if method == "" {
		method = "joint"
	}
	if method != "standard" && method != "joint" {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("method %q cannot be distributed; use \"standard\" or \"joint\"", method), reqID)
		return
	}
	cutPos, err := cutPosOf(req.CutPos, numQubits)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err, reqID)
		return
	}
	if len(s.coord.Workers()) == 0 {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Errorf("%w: register workers or start hsfsimd with -dist-worker addresses", dist.ErrNoWorkers), reqID)
		return
	}
	backend, err := s.resolveBackend(req.Backend)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err, reqID)
		return
	}
	job := &dist.Job{
		QASM:           req.QASM,
		Method:         method,
		CutPos:         cutPos,
		Strategy:       req.Strategy,
		MaxBlockQubits: req.MaxBlockQubits,
		MaxAmplitudes:  req.MaxAmplitudes,
	}
	if backend != hsfsim.BackendDense {
		// Dense stays the absent field so leases interoperate with workers
		// predating the backend field.
		job.Backend = backend.String()
	}

	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		d := time.Duration(req.TimeoutMillis) * time.Millisecond
		if s.cfg.MaxTimeout > 0 && d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, d, hsfsim.ErrTimeout)
		defer cancel()
	}

	start := time.Now()
	res, err := s.coord.Run(ctx, job, dist.RunOptions{})
	if err != nil {
		if errors.Is(err, dist.ErrNoWorkers) {
			writeErr(w, http.StatusServiceUnavailable, err, reqID)
			return
		}
		s.writeSimulateErr(w, r, err, time.Since(start))
		return
	}
	metricSimulations.Add(1)
	resp := SimulateResponse{
		Method:         method + "-hsf",
		NumQubits:      numQubits,
		NumPaths:       res.NumPaths,
		Log2Paths:      res.Log2Paths,
		NumCuts:        res.NumCuts,
		NumBlocks:      res.NumBlocks,
		SimMs:          float64(time.Since(start).Microseconds()) / 1000,
		PathsSimulated: res.PathsSimulated,
		Distributed:    true,
		DistWorkers:    res.Workers,
		DistBatches:    res.Batches,
		Reassignments:  res.Reassignments,
	}
	resp.fillAmplitudes(res.Amplitudes)
	writeJSON(w, resp)
}

// handleDistRun is the worker endpoint: execute one leased prefix batch and
// stream the partial accumulator back in the checkpoint wire format. It runs
// under the same limiter and panic middleware as /simulate, so a worker sheds
// leases with 429 when saturated — the coordinator treats that as transient
// and reassigns.
func (s *service) handleDistRun(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r.Context())
	if s.drainCtx.Err() != nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("worker draining"), reqID)
		return
	}
	var req dist.RunRequest
	if !s.decode(w, r, &req) {
		return
	}
	ctx := r.Context()
	if s.cfg.MaxTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.MaxTimeout)
		defer cancel()
	}
	// Drain cancels the lease mid-run; with AllowPartial set the finished
	// prefixes still go back to the coordinator as a valid partial.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopDrainWatch := context.AfterFunc(s.drainCtx, cancel)
	defer stopDrainWatch()
	rec := telemetry.New()
	defer s.mergeRunTelemetry(rec)
	// The execution window, stamped on this worker's own clock, rides the
	// reply headers back so the coordinator can estimate our clock offset
	// and place this lease's execution on its merged fleet timeline.
	execStart := time.Now()
	ck, err := dist.ExecuteRun(ctx, &req, dist.ExecOptions{
		Workers:      s.cfg.Workers,
		MemoryBudget: s.cfg.MemoryBudget,
		MaxPaths:     s.cfg.MaxPaths,
		Telemetry:    rec,
	})
	execEnd := time.Now()
	w.Header().Set(dist.WorkerStartHeader, strconv.FormatInt(execStart.UnixNano(), 10))
	w.Header().Set(dist.WorkerEndHeader, strconv.FormatInt(execEnd.UnixNano(), 10))
	if err != nil {
		s.writeDistRunErr(w, r, err)
		return
	}
	s.cfg.Logger.Printf("%s /dist/run: %d prefixes, %d paths in %v",
		reqID, len(req.Prefixes), ck.PathsSimulated, execEnd.Sub(execStart).Round(time.Millisecond))
	metricWorkerRuns.Add(1)
	metricPathsSimulated.Add(ck.PathsSimulated)
	w.Header().Set("Content-Type", "application/octet-stream")
	if werr := hsf.WriteCheckpoint(w, ck); werr != nil {
		// The coordinator is gone mid-stream; it will reassign the lease.
		s.cfg.Logger.Printf("%s /dist/run: writing partial: %v", reqID, werr)
	}
}

// writeDistRunErr maps worker failures onto the statuses the HTTP transport
// classifies: 4xx (except 408/429) means permanent — every worker would
// repeat it — while 408/429/5xx trigger reassignment.
func (s *service) writeDistRunErr(w http.ResponseWriter, r *http.Request, err error) {
	reqID := requestID(r.Context())
	switch {
	case errors.Is(err, dist.ErrPlanMismatch):
		writeErr(w, http.StatusConflict, err, reqID)
	case errors.Is(err, hsfsim.ErrBudget):
		writeErr(w, http.StatusUnprocessableEntity, err, reqID)
	case dist.IsPermanent(err):
		writeErr(w, http.StatusBadRequest, err, reqID)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, hsfsim.ErrTimeout):
		writeErr(w, http.StatusRequestTimeout, err, reqID)
	case errors.Is(err, context.Canceled):
		s.cfg.Logger.Printf("%s /dist/run: lease abandoned by coordinator", reqID)
		writeErr(w, StatusClientClosedRequest, err, reqID)
	default:
		writeErr(w, http.StatusInternalServerError, err, reqID)
	}
}

// handleDistRegister records a worker heartbeat in the fleet registry.
func (s *service) handleDistRegister(w http.ResponseWriter, r *http.Request) {
	var req dist.RegisterRequest
	if !s.decode(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Addr) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("register: empty worker addr"), requestID(r.Context()))
		return
	}
	n := s.coord.Register(req.Addr)
	writeJSON(w, dist.RegisterResponse{
		Workers:         n,
		TTLMillis:       int(s.coord.TTL() / time.Millisecond),
		HeartbeatMillis: int(s.coord.HeartbeatInterval() / time.Millisecond),
	})
}

// handleDistDeregister removes a draining worker from the fleet so running
// sessions stop granting it leases and re-split what it still holds.
func (s *service) handleDistDeregister(w http.ResponseWriter, r *http.Request) {
	var req dist.DeregisterRequest
	if !s.decode(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Addr) == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("deregister: empty worker addr"), requestID(r.Context()))
		return
	}
	s.coord.Deregister(req.Addr)
	writeJSON(w, dist.WorkerList{Workers: s.coord.Workers()})
}

// handleDistWorkers lists the live fleet.
func (s *service) handleDistWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, dist.WorkerList{Workers: s.coord.Workers()})
}

// writeSimulateErr classifies simulation failures into the documented status
// codes: 408 timeout/deadline, 422 budget or planning, 499 client gone, 500
// worker panic.
func (s *service) writeSimulateErr(w http.ResponseWriter, r *http.Request, err error, elapsed time.Duration) {
	reqID := requestID(r.Context())
	var pe *hsfsim.PanicError
	switch {
	case errors.As(err, &pe):
		s.cfg.Logger.Printf("%s %s: worker panic after %v: %v", reqID, r.URL.Path, elapsed, pe.Value)
		writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("internal error: simulation worker panicked (request %s)", reqID), reqID)
	case errors.Is(err, hsfsim.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusRequestTimeout, err, reqID)
	case errors.Is(err, context.Canceled):
		// The client went away; nobody reads this response, but log it.
		s.cfg.Logger.Printf("%s %s: client closed request after %v", reqID, r.URL.Path, elapsed)
		writeErr(w, StatusClientClosedRequest, err, reqID)
	case errors.Is(err, hsfsim.ErrBudget):
		writeErr(w, http.StatusUnprocessableEntity, err, reqID)
	default:
		writeErr(w, http.StatusUnprocessableEntity, err, reqID)
	}
}
