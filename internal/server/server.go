// Package server exposes the simulator over HTTP with a JSON API:
//
//	POST /analyze   — cut-plan summary for a QASM circuit
//	POST /simulate  — run one of the three methods on a QASM circuit
//	GET  /healthz   — liveness
//	GET  /readyz    — readiness / saturation of the simulation limiter
//
// The handlers are plain net/http so the service embeds anywhere; cmd/hsfsimd
// wraps them in a binary.
//
// Resilience: every request gets an ID (echoed in the X-Request-Id header,
// error envelopes, and logs), panics become 500 JSON envelopes, simulation
// endpoints run under a semaphore that sheds load with 429 + Retry-After
// when saturated, per-request deadlines derive from timeout_ms through the
// request context, and admission control rejects over-budget jobs with 422
// before allocating.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"hsfsim"
	"hsfsim/internal/qasm"
)

// MaxRequestBytes bounds the accepted QASM payload.
const MaxRequestBytes = 4 << 20

// MaxReturnedAmplitudes bounds the amplitudes echoed back per request.
const MaxReturnedAmplitudes = 4096

// StatusClientClosedRequest is the nonstandard (nginx-convention) status
// logged when the client goes away mid-simulation.
const StatusClientClosedRequest = 499

// Config tunes the service; the zero value selects production defaults.
type Config struct {
	// MaxConcurrent bounds simultaneous /simulate + /analyze requests;
	// excess requests are shed with 429 + Retry-After. 0 selects
	// 2×GOMAXPROCS; negative disables the limiter.
	MaxConcurrent int
	// MemoryBudget and MaxPaths are passed through to the simulator's
	// admission gate (see hsfsim.Options); over-budget jobs get 422.
	MemoryBudget int64
	MaxPaths     uint64
	// MaxTimeout caps the per-request timeout_ms (0: 10 minutes).
	MaxTimeout time.Duration
	// Workers bounds simulation parallelism per request (0: all CPUs).
	Workers int
	// Logger receives request logs (nil: log.Default()).
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// AnalyzeRequest is the /analyze payload.
type AnalyzeRequest struct {
	QASM           string `json:"qasm"`
	CutPos         *int   `json:"cut_pos,omitempty"` // default n/2-1
	Strategy       string `json:"strategy,omitempty"`
	MaxBlockQubits int    `json:"max_block_qubits,omitempty"`
}

// SimulateRequest is the /simulate payload.
type SimulateRequest struct {
	QASM           string `json:"qasm"`
	Method         string `json:"method"` // schrodinger | standard | joint
	CutPos         *int   `json:"cut_pos,omitempty"`
	MaxAmplitudes  int    `json:"max_amplitudes,omitempty"`
	Strategy       string `json:"strategy,omitempty"`
	MaxBlockQubits int    `json:"max_block_qubits,omitempty"`
	TimeoutMillis  int    `json:"timeout_ms,omitempty"`
}

// Amplitude is one complex amplitude in the response.
type Amplitude struct {
	Re float64 `json:"re"`
	Im float64 `json:"im"`
}

// SimulateResponse is the /simulate reply.
type SimulateResponse struct {
	Method          string      `json:"method"`
	NumQubits       int         `json:"num_qubits"`
	NumPaths        uint64      `json:"num_paths"`
	Log2Paths       float64     `json:"log2_paths"`
	NumCuts         int         `json:"num_cuts"`
	NumBlocks       int         `json:"num_blocks"`
	PreprocessMs    float64     `json:"preprocess_ms"`
	SimMs           float64     `json:"sim_ms"`
	Amplitudes      []Amplitude `json:"amplitudes"`
	AmplitudesTotal int         `json:"amplitudes_total"`
	Truncated       bool        `json:"truncated"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// readyBody is the /readyz reply.
type readyBody struct {
	Status   string `json:"status"` // "ready" | "saturated"
	InFlight int64  `json:"in_flight"`
	Capacity int    `json:"capacity"`
}

type service struct {
	cfg      Config
	sem      chan struct{} // nil when the limiter is disabled
	inFlight atomic.Int64
	reqSeq   atomic.Uint64
}

// New returns the HTTP handler tree with default configuration.
func New() http.Handler { return NewWithConfig(Config{}) }

// NewWithConfig returns the HTTP handler tree.
func NewWithConfig(cfg Config) http.Handler {
	s := &service{cfg: cfg.withDefaults()}
	if s.cfg.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, s.cfg.MaxConcurrent)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealth)
	mux.HandleFunc("/readyz", s.handleReady)
	mux.Handle("/analyze", s.limited(s.handleAnalyze))
	mux.Handle("/simulate", s.limited(s.handleSimulate))
	return s.instrument(mux)
}

// instrument assigns a request ID and converts handler panics into 500 JSON
// envelopes instead of letting net/http kill the connection.
func (s *service) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%08x", s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(withRequestID(r.Context(), id))
		defer func() {
			if rec := recover(); rec != nil {
				s.cfg.Logger.Printf("%s %s %s: panic: %v", id, r.Method, r.URL.Path, rec)
				writeErr(w, http.StatusInternalServerError,
					fmt.Errorf("internal error (request %s)", id), id)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// limited wraps a simulation handler in the concurrency semaphore: requests
// beyond capacity are shed immediately with 429 + Retry-After so callers can
// back off instead of queueing into memory exhaustion.
func (s *service) limited(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusTooManyRequests,
					fmt.Errorf("server saturated: %d simulations in flight", s.inFlight.Load()),
					requestID(r.Context()))
				return
			}
		}
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)
		h(w, r)
	})
}

type requestIDKey struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReady reports limiter saturation: 200 while capacity remains, 503
// when every slot is taken (load balancers should stop routing here).
func (s *service) handleReady(w http.ResponseWriter, r *http.Request) {
	body := readyBody{Status: "ready", InFlight: s.inFlight.Load(), Capacity: s.cfg.MaxConcurrent}
	code := http.StatusOK
	if s.sem != nil && len(s.sem) >= cap(s.sem) {
		body.Status = "saturated"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

func writeErr(w http.ResponseWriter, code int, err error, reqID string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error(), RequestID: reqID})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *service) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"), requestID(r.Context()))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err), requestID(r.Context()))
		return false
	}
	return true
}

func parseCircuit(qasmSrc string) (*hsfsim.Circuit, error) {
	if strings.TrimSpace(qasmSrc) == "" {
		return nil, fmt.Errorf("empty qasm")
	}
	return qasm.Parse(strings.NewReader(qasmSrc))
}

func strategyOf(s string) (hsfsim.BlockStrategy, error) {
	switch s {
	case "", "cascade":
		return hsfsim.BlockCascade, nil
	case "window":
		return hsfsim.BlockWindow, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

// cutPosOf resolves the partition cut for an HSF request. The default is
// n/2-1; explicit positions must leave at least one qubit on each side. An
// error here is a client error (422): the circuit cannot be bipartitioned as
// requested.
func cutPosOf(req *int, numQubits int) (int, error) {
	if numQubits < 2 {
		return 0, fmt.Errorf("HSF methods need at least 2 qubits to bipartition (circuit has %d); use method \"schrodinger\"", numQubits)
	}
	if req == nil {
		return numQubits/2 - 1, nil
	}
	if *req < 0 || *req > numQubits-2 {
		return 0, fmt.Errorf("cut_pos %d out of range [0, %d] for %d qubits", *req, numQubits-2, numQubits)
	}
	return *req, nil
}

func (s *service) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r.Context())
	var req AnalyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	c, err := parseCircuit(req.QASM)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err, reqID)
		return
	}
	strategy, err := strategyOf(req.Strategy)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err, reqID)
		return
	}
	cutPos, err := cutPosOf(req.CutPos, c.NumQubits)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err, reqID)
		return
	}
	sum, err := hsfsim.Analyze(c, cutPos, strategy, req.MaxBlockQubits)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err, reqID)
		return
	}
	writeJSON(w, sum)
}

func (s *service) handleSimulate(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r.Context())
	var req SimulateRequest
	if !s.decode(w, r, &req) {
		return
	}
	c, err := parseCircuit(req.QASM)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err, reqID)
		return
	}
	opts := hsfsim.Options{
		MaxAmplitudes:  req.MaxAmplitudes,
		MaxBlockQubits: req.MaxBlockQubits,
		Workers:        s.cfg.Workers,
		MemoryBudget:   s.cfg.MemoryBudget,
		MaxPaths:       s.cfg.MaxPaths,
	}
	switch req.Method {
	case "schrodinger":
		opts.Method = hsfsim.Schrodinger
	case "standard":
		opts.Method = hsfsim.StandardHSF
	case "joint", "":
		opts.Method = hsfsim.JointHSF
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown method %q", req.Method), reqID)
		return
	}
	if opts.BlockStrategy, err = strategyOf(req.Strategy); err != nil {
		writeErr(w, http.StatusBadRequest, err, reqID)
		return
	}
	if opts.Method != hsfsim.Schrodinger {
		if opts.CutPos, err = cutPosOf(req.CutPos, c.NumQubits); err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err, reqID)
			return
		}
	}

	// The request deadline rides on the request context: client disconnects
	// and timeout_ms both cancel the simulation cooperatively.
	ctx := r.Context()
	if req.TimeoutMillis > 0 {
		d := time.Duration(req.TimeoutMillis) * time.Millisecond
		if s.cfg.MaxTimeout > 0 && d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, d, hsfsim.ErrTimeout)
		defer cancel()
	}

	start := time.Now()
	res, err := hsfsim.SimulateContext(ctx, c, opts)
	if err != nil {
		s.writeSimulateErr(w, r, err, time.Since(start))
		return
	}

	resp := SimulateResponse{
		Method:          res.Method.String(),
		NumQubits:       c.NumQubits,
		NumPaths:        res.NumPaths,
		Log2Paths:       res.Log2Paths,
		NumCuts:         res.NumCuts,
		NumBlocks:       res.NumBlocks,
		PreprocessMs:    float64(res.PreprocessTime.Microseconds()) / 1000,
		SimMs:           float64(res.SimTime.Microseconds()) / 1000,
		AmplitudesTotal: len(res.Amplitudes),
	}
	n := len(res.Amplitudes)
	if n > MaxReturnedAmplitudes {
		n = MaxReturnedAmplitudes
		resp.Truncated = true
	}
	resp.Amplitudes = make([]Amplitude, n)
	for i := 0; i < n; i++ {
		resp.Amplitudes[i] = Amplitude{Re: real(res.Amplitudes[i]), Im: imag(res.Amplitudes[i])}
	}
	writeJSON(w, resp)
}

// writeSimulateErr classifies simulation failures into the documented status
// codes: 408 timeout/deadline, 422 budget or planning, 499 client gone, 500
// worker panic.
func (s *service) writeSimulateErr(w http.ResponseWriter, r *http.Request, err error, elapsed time.Duration) {
	reqID := requestID(r.Context())
	var pe *hsfsim.PanicError
	switch {
	case errors.As(err, &pe):
		s.cfg.Logger.Printf("%s %s: worker panic after %v: %v", reqID, r.URL.Path, elapsed, pe.Value)
		writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("internal error: simulation worker panicked (request %s)", reqID), reqID)
	case errors.Is(err, hsfsim.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusRequestTimeout, err, reqID)
	case errors.Is(err, context.Canceled):
		// The client went away; nobody reads this response, but log it.
		s.cfg.Logger.Printf("%s %s: client closed request after %v", reqID, r.URL.Path, elapsed)
		writeErr(w, StatusClientClosedRequest, err, reqID)
	case errors.Is(err, hsfsim.ErrBudget):
		writeErr(w, http.StatusUnprocessableEntity, err, reqID)
	default:
		writeErr(w, http.StatusUnprocessableEntity, err, reqID)
	}
}
