// Package server exposes the simulator over HTTP with a JSON API:
//
//	POST /analyze   — cut-plan summary for a QASM circuit
//	POST /simulate  — run one of the three methods on a QASM circuit
//	GET  /healthz   — liveness
//
// The handlers are plain net/http so the service embeds anywhere; cmd/hsfsimd
// wraps them in a binary.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"hsfsim"
	"hsfsim/internal/qasm"
)

// MaxRequestBytes bounds the accepted QASM payload.
const MaxRequestBytes = 4 << 20

// MaxReturnedAmplitudes bounds the amplitudes echoed back per request.
const MaxReturnedAmplitudes = 4096

// AnalyzeRequest is the /analyze payload.
type AnalyzeRequest struct {
	QASM           string `json:"qasm"`
	CutPos         *int   `json:"cut_pos,omitempty"` // default n/2-1
	Strategy       string `json:"strategy,omitempty"`
	MaxBlockQubits int    `json:"max_block_qubits,omitempty"`
}

// SimulateRequest is the /simulate payload.
type SimulateRequest struct {
	QASM           string `json:"qasm"`
	Method         string `json:"method"` // schrodinger | standard | joint
	CutPos         *int   `json:"cut_pos,omitempty"`
	MaxAmplitudes  int    `json:"max_amplitudes,omitempty"`
	Strategy       string `json:"strategy,omitempty"`
	MaxBlockQubits int    `json:"max_block_qubits,omitempty"`
	TimeoutMillis  int    `json:"timeout_ms,omitempty"`
}

// Amplitude is one complex amplitude in the response.
type Amplitude struct {
	Re float64 `json:"re"`
	Im float64 `json:"im"`
}

// SimulateResponse is the /simulate reply.
type SimulateResponse struct {
	Method          string      `json:"method"`
	NumQubits       int         `json:"num_qubits"`
	NumPaths        uint64      `json:"num_paths"`
	Log2Paths       float64     `json:"log2_paths"`
	NumCuts         int         `json:"num_cuts"`
	NumBlocks       int         `json:"num_blocks"`
	PreprocessMs    float64     `json:"preprocess_ms"`
	SimMs           float64     `json:"sim_ms"`
	Amplitudes      []Amplitude `json:"amplitudes"`
	AmplitudesTotal int         `json:"amplitudes_total"`
	Truncated       bool        `json:"truncated"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// New returns the HTTP handler tree.
func New() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", handleHealth)
	mux.HandleFunc("/analyze", handleAnalyze)
	mux.HandleFunc("/simulate", handleSimulate)
	return mux
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorBody{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request: %w", err))
		return false
	}
	return true
}

func parseCircuit(qasmSrc string) (*hsfsim.Circuit, error) {
	if strings.TrimSpace(qasmSrc) == "" {
		return nil, fmt.Errorf("empty qasm")
	}
	return qasm.Parse(strings.NewReader(qasmSrc))
}

func strategyOf(s string) (hsfsim.BlockStrategy, error) {
	switch s {
	case "", "cascade":
		return hsfsim.BlockCascade, nil
	case "window":
		return hsfsim.BlockWindow, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func cutPosOf(req *int, numQubits int) int {
	if req != nil {
		return *req
	}
	return numQubits/2 - 1
}

func handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !decode(w, r, &req) {
		return
	}
	c, err := parseCircuit(req.QASM)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	strategy, err := strategyOf(req.Strategy)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s, err := hsfsim.Analyze(c, cutPosOf(req.CutPos, c.NumQubits), strategy, req.MaxBlockQubits)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, s)
}

func handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if !decode(w, r, &req) {
		return
	}
	c, err := parseCircuit(req.QASM)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	opts := hsfsim.Options{
		MaxAmplitudes:  req.MaxAmplitudes,
		MaxBlockQubits: req.MaxBlockQubits,
	}
	switch req.Method {
	case "schrodinger":
		opts.Method = hsfsim.Schrodinger
	case "standard":
		opts.Method = hsfsim.StandardHSF
	case "joint", "":
		opts.Method = hsfsim.JointHSF
	default:
		writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown method %q", req.Method))
		return
	}
	if opts.BlockStrategy, err = strategyOf(req.Strategy); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if opts.Method != hsfsim.Schrodinger {
		opts.CutPos = cutPosOf(req.CutPos, c.NumQubits)
	}
	if req.TimeoutMillis > 0 {
		opts.Timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
	}

	res, err := hsfsim.Simulate(c, opts)
	if err == hsfsim.ErrTimeout {
		writeErr(w, http.StatusRequestTimeout, err)
		return
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}

	resp := SimulateResponse{
		Method:          res.Method.String(),
		NumQubits:       c.NumQubits,
		NumPaths:        res.NumPaths,
		Log2Paths:       res.Log2Paths,
		NumCuts:         res.NumCuts,
		NumBlocks:       res.NumBlocks,
		PreprocessMs:    float64(res.PreprocessTime.Microseconds()) / 1000,
		SimMs:           float64(res.SimTime.Microseconds()) / 1000,
		AmplitudesTotal: len(res.Amplitudes),
	}
	n := len(res.Amplitudes)
	if n > MaxReturnedAmplitudes {
		n = MaxReturnedAmplitudes
		resp.Truncated = true
	}
	resp.Amplitudes = make([]Amplitude, n)
	for i := 0; i < n; i++ {
		resp.Amplitudes[i] = Amplitude{Re: real(res.Amplitudes[i]), Im: imag(res.Amplitudes[i])}
	}
	writeJSON(w, resp)
}
