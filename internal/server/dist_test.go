package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/cmplx"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hsfsim/internal/dist"
	"hsfsim/internal/hsf"
)

// distQASM builds a QAOA-style circuit with enough crossing entanglers that a
// joint-cut plan has a multi-level prefix space worth sharding.
func distQASM(n, edges int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	fmt.Fprintf(&b, "qreg q[%d];\n", n)
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "h q[%d];\n", q)
	}
	for i := 0; i < edges; i++ {
		a := rng.Intn(n)
		c := (a + 1 + rng.Intn(n-1)) % n
		fmt.Fprintf(&b, "rzz(%.6f) q[%d],q[%d];\n", rng.Float64()*2, a, c)
	}
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "rx(%.6f) q[%d];\n", rng.Float64(), q)
	}
	return b.String()
}

func hostPort(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

func quietConfig() Config {
	return Config{Logger: log.New(io.Discard, "", 0)}
}

// TestSimulateDistributeOverHTTP drives distribute:true end to end: a
// coordinator daemon fans the job out to two worker daemons over real HTTP
// and the merged amplitudes must match the same daemon simulating locally.
func TestSimulateDistributeOverHTTP(t *testing.T) {
	w1 := httptest.NewServer(New())
	defer w1.Close()
	w2 := httptest.NewServer(New())
	defer w2.Close()

	svc := NewService(quietConfig())
	co := httptest.NewServer(svc.Handler())
	defer co.Close()
	svc.AddWorker(hostPort(w1))
	svc.AddWorker(hostPort(w2))

	cutPos := 3
	req := SimulateRequest{QASM: distQASM(8, 10, 11), Method: "joint", CutPos: &cutPos}

	resp := post(t, co, "/simulate", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("local simulate: status %d: %s", resp.StatusCode, body)
	}
	var local SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&local); err != nil {
		t.Fatal(err)
	}

	req.Distribute = true
	resp = post(t, co, "/simulate", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("distributed simulate: status %d: %s", resp.StatusCode, body)
	}
	var distResp SimulateResponse
	if err := json.NewDecoder(resp.Body).Decode(&distResp); err != nil {
		t.Fatal(err)
	}
	if !distResp.Distributed || distResp.DistWorkers != 2 {
		t.Fatalf("distributed response: %+v", distResp)
	}
	if distResp.DistBatches < 2 {
		t.Fatalf("want ≥ 2 batches, got %d", distResp.DistBatches)
	}
	if len(distResp.Amplitudes) != len(local.Amplitudes) {
		t.Fatalf("amplitude count %d != %d", len(distResp.Amplitudes), len(local.Amplitudes))
	}
	for i := range local.Amplitudes {
		d := cmplx.Abs(complex(distResp.Amplitudes[i].Re-local.Amplitudes[i].Re,
			distResp.Amplitudes[i].Im-local.Amplitudes[i].Im))
		if d > 1e-12 {
			t.Fatalf("amplitude %d differs by %g", i, d)
		}
	}
}

func TestSimulateDistributeWithoutWorkers(t *testing.T) {
	srv := httptest.NewServer(NewWithConfig(quietConfig()))
	defer srv.Close()
	cutPos := 0
	resp := post(t, srv, "/simulate", SimulateRequest{
		QASM: bellQASM, Method: "joint", CutPos: &cutPos, Distribute: true,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
}

func TestSimulateDistributeRejectsSchrodinger(t *testing.T) {
	svc := NewService(quietConfig())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	svc.AddWorker("127.0.0.1:1") // fleet non-empty; method check comes first
	resp := post(t, srv, "/simulate", SimulateRequest{
		QASM: bellQASM, Method: "schrodinger", Distribute: true,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestDistRunEndpoint exercises the worker endpoint directly: a full-prefix
// lease must return a checkpoint whose accumulator equals the local result,
// and a wrong plan hash must be refused with 409 (a permanent status).
func TestDistRunEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewWithConfig(quietConfig()))
	defer srv.Close()

	job := dist.Job{QASM: distQASM(8, 10, 12), Method: "joint", CutPos: 3}
	plan, err := job.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	splitLevels := hsf.ChooseSplitLevels(plan, 4)
	prefixes := hsf.EnumeratePrefixes(plan, splitLevels)
	req := dist.RunRequest{
		Job:         job,
		PlanHash:    hsf.PlanHash(plan),
		SplitLevels: splitLevels,
		Prefixes:    prefixes,
	}

	resp := post(t, srv, "/dist/run", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	ck, err := hsf.ReadCheckpoint(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Prefixes) != len(prefixes) {
		t.Fatalf("checkpoint has %d prefixes, leased %d", len(ck.Prefixes), len(prefixes))
	}
	want, err := hsf.Run(plan, hsf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Amplitudes {
		if d := cmplx.Abs(ck.Acc[i] - want.Amplitudes[i]); d > 1e-12 {
			t.Fatalf("amplitude %d differs by %g", i, d)
		}
	}

	req.PlanHash++
	resp2 := post(t, srv, "/dist/run", req)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("plan mismatch: status %d, want 409", resp2.StatusCode)
	}
}

func TestDistRegisterAndWorkers(t *testing.T) {
	svc := NewService(quietConfig())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	resp := post(t, srv, "/dist/register", dist.RegisterRequest{Addr: "worker-a:9000"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	var reg dist.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if reg.Workers != 1 || reg.TTLMillis <= 0 {
		t.Fatalf("register response: %+v", reg)
	}

	wresp, err := http.Get(srv.URL + "/dist/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	var list dist.WorkerList
	if err := json.NewDecoder(wresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 1 || list.Workers[0] != "worker-a:9000" {
		t.Fatalf("workers: %v", list.Workers)
	}

	// Empty address is refused.
	resp2 := post(t, srv, "/dist/register", dist.RegisterRequest{Addr: "  "})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty register: status %d, want 400", resp2.StatusCode)
	}
}

// TestMetricsExposed checks the expvar surface: /debug/vars carries the
// hsfsimd map and /readyz echoes the counter snapshot.
func TestMetricsExposed(t *testing.T) {
	svc := NewService(quietConfig())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	svc.AddWorker("worker-a:9000")

	cutPos := 0
	resp := post(t, srv, "/simulate", SimulateRequest{QASM: bellQASM, Method: "joint", CutPos: &cutPos})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d", resp.StatusCode)
	}

	dv, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Body.Close()
	var vars struct {
		Hsfsimd map[string]json.Number `json:"hsfsimd"`
	}
	if err := json.NewDecoder(dv.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"requests_total", "simulations_total", "paths_simulated_total",
		"shed_429_total", "in_flight", "worker_runs_total",
		"dist_leases_granted_total", "dist_lease_reassignments_total",
	} {
		if _, ok := vars.Hsfsimd[key]; !ok {
			t.Fatalf("/debug/vars hsfsimd map missing %q (have %v)", key, vars.Hsfsimd)
		}
	}
	if n, _ := vars.Hsfsimd["requests_total"].Int64(); n < 1 {
		t.Fatalf("requests_total = %d, want ≥ 1", n)
	}
	if n, _ := vars.Hsfsimd["simulations_total"].Int64(); n < 1 {
		t.Fatalf("simulations_total = %d, want ≥ 1", n)
	}
	if n, _ := vars.Hsfsimd["paths_simulated_total"].Int64(); n < 1 {
		t.Fatalf("paths_simulated_total = %d, want ≥ 1", n)
	}

	rz, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Body.Close()
	var ready readyBody
	if err := json.NewDecoder(rz.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.RequestsTotal < 1 || ready.SimulationsTotal < 1 {
		t.Fatalf("readyz counters: %+v", ready)
	}
	if ready.Workers != 1 {
		t.Fatalf("readyz dist_workers = %d, want 1", ready.Workers)
	}
}
