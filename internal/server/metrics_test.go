package server

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"hsfsim/internal/dist"
	"hsfsim/internal/statevec"
	"hsfsim/internal/telemetry"
)

// promSample is one exposition sample line: name, raw label block, value.
type promSample struct {
	name   string
	labels string
	value  float64
}

// promFamily is one metric family assembled from # HELP/# TYPE plus samples.
type promFamily struct {
	typ     string
	help    bool
	samples []promSample
}

// scrapeMetrics fetches url and parses the Prometheus text exposition format
// (v0.0.4) strictly enough to catch malformed output: every sample must
// belong to a family announced by # TYPE, and values must parse as floats.
func scrapeMetrics(t *testing.T, url string) map[string]*promFamily {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PrometheusContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, telemetry.PrometheusContentType)
	}

	fams := map[string]*promFamily{}
	family := func(name string) *promFamily {
		if fams[name] == nil {
			fams[name] = &promFamily{}
		}
		return fams[name]
	}
	// baseOf strips histogram sample suffixes when the base family was
	// declared as a histogram.
	baseOf := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if f, ok := fams[base]; ok && f.typ == "histogram" {
					return base
				}
			}
		}
		return name
	}

	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			family(parts[0]).help = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			family(parts[0]).typ = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Sample: name[{labels}] value
		var name, labels, val string
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Fatalf("malformed sample line: %q", line)
			}
			name, labels, val = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("malformed sample line: %q", line)
			}
			name, val = fields[0], fields[1]
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("sample %q: bad value %q: %v", name, val, err)
		}
		base := baseOf(name)
		f, ok := fams[base]
		if !ok || f.typ == "" {
			t.Fatalf("sample %q has no preceding # TYPE", name)
		}
		f.samples = append(f.samples, promSample{name: name, labels: labels, value: v})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return fams
}

// checkHistogram validates one histogram family: cumulative nondecreasing
// buckets ending in le="+Inf", whose count equals the _count sample, plus a
// _sum sample.
func checkHistogram(t *testing.T, fams map[string]*promFamily, name string) {
	t.Helper()
	f := fams[name]
	if f == nil || f.typ != "histogram" || !f.help {
		t.Fatalf("histogram %s missing or not announced (have %+v)", name, f)
	}
	var buckets []promSample
	var count, sum *promSample
	for i, s := range f.samples {
		switch s.name {
		case name + "_bucket":
			buckets = append(buckets, s)
		case name + "_count":
			count = &f.samples[i]
		case name + "_sum":
			sum = &f.samples[i]
		}
	}
	if len(buckets) < 2 || count == nil || sum == nil {
		t.Fatalf("%s: incomplete histogram: %d buckets, count=%v sum=%v", name, len(buckets), count, sum)
	}
	prev := -1.0
	for _, b := range buckets {
		if !strings.HasPrefix(b.labels, `le="`) {
			t.Fatalf("%s bucket without le label: %+v", name, b)
		}
		if b.value < prev {
			t.Fatalf("%s buckets not cumulative: %v after %v", name, b.value, prev)
		}
		prev = b.value
	}
	last := buckets[len(buckets)-1]
	if last.labels != `le="+Inf"` {
		t.Fatalf("%s: final bucket is %q, want le=\"+Inf\"", name, last.labels)
	}
	if last.value != count.value {
		t.Fatalf("%s: +Inf bucket %v != count %v", name, last.value, count.value)
	}
}

// TestPrometheusMetricsScrape runs a simulation, scrapes /metrics, and parses
// the exposition: every expvar counter must appear as an announced counter,
// the three latency histograms must be well-formed, and runtime gauges must
// be present.
func TestPrometheusMetricsScrape(t *testing.T) {
	svc := NewService(quietConfig())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	cutPos := 3
	resp := post(t, srv, "/simulate", SimulateRequest{QASM: distQASM(8, 10, 11), Method: "joint", CutPos: &cutPos})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d", resp.StatusCode)
	}

	fams := scrapeMetrics(t, srv.URL+"/metrics")

	for _, name := range []string{
		"hsfsimd_requests_total", "hsfsimd_simulations_total",
		"hsfsimd_paths_simulated_total", "hsfsimd_shed_429_total",
		"hsfsimd_worker_runs_total",
		"hsfsimd_dist_leases_granted_total", "hsfsimd_dist_lease_reassignments_total",
		"hsfsimd_dist_workers_retired_total", "hsfsimd_dist_prefixes_merged_total",
		"hsfsimd_dist_paths_simulated_total", "hsfsimd_gc_cycles_total",
	} {
		f := fams[name]
		if f == nil || f.typ != "counter" || !f.help || len(f.samples) != 1 {
			t.Fatalf("counter %s missing or malformed: %+v", name, f)
		}
		if f.samples[0].value < 0 {
			t.Fatalf("counter %s negative: %v", name, f.samples[0].value)
		}
	}
	for _, name := range []string{
		"hsfsimd_in_flight", "hsfsimd_dist_leases_in_flight",
		"hsfsimd_heap_alloc_bytes", "hsfsimd_heap_sys_bytes",
		"hsfsimd_gc_pause_seconds_total", "hsfsimd_goroutines",
	} {
		f := fams[name]
		if f == nil || f.typ != "gauge" || !f.help || len(f.samples) != 1 {
			t.Fatalf("gauge %s missing or malformed: %+v", name, f)
		}
	}
	info := fams["hsfsimd_build_info"]
	if info == nil || info.typ != "gauge" || !info.help || len(info.samples) != 1 {
		t.Fatalf("hsfsimd_build_info missing or malformed: %+v", info)
	}
	if s := info.samples[0]; s.value != 1 ||
		!strings.Contains(s.labels, `go_version="`+runtime.Version()+`"`) ||
		!strings.Contains(s.labels, `kernel_isa="`+statevec.KernelISA()+`"`) {
		t.Fatalf("hsfsimd_build_info sample %+v, want value 1 with go_version and kernel_isa labels", s)
	}

	checkHistogram(t, fams, "hsfsimd_leaf_latency_seconds")
	checkHistogram(t, fams, "hsfsimd_segment_sweep_seconds")
	checkHistogram(t, fams, "hsfsimd_dist_lease_duration_seconds")

	if v := fams["hsfsimd_requests_total"].samples[0].value; v < 1 {
		t.Fatalf("requests_total = %v, want ≥ 1", v)
	}
	if v := fams["hsfsimd_simulations_total"].samples[0].value; v < 1 {
		t.Fatalf("simulations_total = %v, want ≥ 1", v)
	}
	if v := fams["hsfsimd_heap_alloc_bytes"].samples[0].value; v <= 0 {
		t.Fatalf("heap_alloc_bytes = %v, want > 0", v)
	}
}

// TestDistStatsScopedPerService is the shared-counter regression test: a
// distributed run on one coordinator must not bleed lease stats into another
// service in the same process, while the process-global expvar aggregation
// still sees the activity.
func TestDistStatsScopedPerService(t *testing.T) {
	worker := newService(quietConfig())
	w := httptest.NewServer(worker.routes())
	defer w.Close()
	bystander := newService(quietConfig())

	coord := NewService(quietConfig())
	co := httptest.NewServer(coord.Handler())
	defer co.Close()
	coord.AddWorker(hostPort(w))

	granted0 := sumDistStats(func(st *dist.Stats) int64 { return st.LeasesGranted.Load() })

	cutPos := 3
	req := SimulateRequest{QASM: distQASM(8, 10, 11), Method: "joint", CutPos: &cutPos, Distribute: true}
	resp := post(t, co, "/simulate", req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed simulate: status %d", resp.StatusCode)
	}

	if got := coord.svc.distStats.LeasesGranted.Load(); got < 1 {
		t.Fatalf("coordinator granted %d leases, want ≥ 1", got)
	}
	if got := worker.distStats.LeasesGranted.Load(); got != 0 {
		t.Fatalf("worker service shows %d granted leases; stats leaked across services", got)
	}
	if got := bystander.distStats.LeasesGranted.Load(); got != 0 {
		t.Fatalf("bystander service shows %d granted leases; stats leaked across services", got)
	}
	granted1 := sumDistStats(func(st *dist.Stats) int64 { return st.LeasesGranted.Load() })
	if granted1-granted0 != coord.svc.distStats.LeasesGranted.Load() {
		t.Fatalf("process aggregate grew by %d, coordinator granted %d",
			granted1-granted0, coord.svc.distStats.LeasesGranted.Load())
	}
	if coord.svc.leaseDurations.Count() < 1 {
		t.Fatalf("coordinator lease-duration histogram empty after distributed run")
	}
	if worker.leaseDurations.Count() != 0 {
		t.Fatalf("worker service recorded %d lease durations; OnLease leaked", worker.leaseDurations.Count())
	}
}
