// Async job endpoints: the multi-tenant job service over internal/jobs.
//
//	POST /jobs              — enqueue a simulation job (202 + snapshot)
//	GET  /jobs              — list jobs (?tenant= filters)
//	GET  /jobs/{id}         — one job's snapshot
//	POST /jobs/{id}/cancel  — cancel a queued or running job
//	GET  /jobs/{id}/result  — a done job's full result
//	GET  /jobs/{id}/events  — SSE stream: progress ticks, then chunked
//	                          amplitudes, then a terminal event
//
// Submissions are admitted against queue capacity, per-tenant quotas, and
// the hsf.Cost budget gate: shed work gets 429 with a Retry-After that
// accounts for queued batches (not just in-flight requests), over-budget
// work gets 422 synchronously.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hsfsim"
	"hsfsim/internal/dist"
	"hsfsim/internal/jobs"
	"hsfsim/internal/telemetry/trace"
)

// JobEventChunk bounds the amplitudes carried by one SSE "amplitudes" event.
const JobEventChunk = 512

// JobSubmitRequest is the POST /jobs payload: a SimulateRequest plus the
// multi-tenant scheduling fields.
type JobSubmitRequest struct {
	SimulateRequest
	// Tenant namespaces quota and fairness ("" = the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Priority orders execution: higher runs first.
	Priority int `json:"priority,omitempty"`
}

// JobListResponse is the GET /jobs reply.
type JobListResponse struct {
	Jobs []jobs.Snapshot `json:"jobs"`
}

// AmplitudeChunk is one SSE "amplitudes" event: a contiguous slice of the
// result statevector, so results of any size stream without one giant frame.
type AmplitudeChunk struct {
	Offset     int         `json:"offset"`
	Total      int         `json:"total"`
	Amplitudes []Amplitude `json:"amplitudes"`
}

// jobsRegistry tracks every service's job manager so the process-global
// expvar block can aggregate across instances, mirroring distStatsRegistry.
var jobsRegistry struct {
	mu  sync.Mutex
	all []*jobs.Manager
}

func registerJobsManager(m *jobs.Manager) {
	jobsRegistry.mu.Lock()
	jobsRegistry.all = append(jobsRegistry.all, m)
	jobsRegistry.mu.Unlock()
}

// sumJobsStats folds one counter across every registered manager so the
// process-global expvar map stays flat scalars (its documented shape).
func sumJobsStats(read func(jobs.StatsSnapshot) int64) int64 {
	jobsRegistry.mu.Lock()
	mgrs := append([]*jobs.Manager(nil), jobsRegistry.all...)
	jobsRegistry.mu.Unlock()
	var total int64
	for _, m := range mgrs {
		total += read(m.Stats())
	}
	return total
}

// newJobsManager assembles the service's job manager from its Config.
func (s *service) newJobsManager() (*jobs.Manager, error) {
	jcfg := jobs.Config{
		Runners:       s.cfg.JobRunners,
		QueueCap:      s.cfg.JobQueueCap,
		TenantQuota:   s.cfg.TenantQuota,
		Quotas:        s.cfg.TenantQuotas,
		FlushInterval: s.cfg.JobFlushInterval,
		Trace:         s.trace,
		Logf: func(format string, args ...any) {
			s.cfg.Logger.Printf(format, args...)
		},
		OnRunTelemetry: s.mergeRunTelemetry,
		OnResult: func(snap jobs.Snapshot, res *hsfsim.Result) {
			metricSimulations.Add(1)
		},
		RunDistributed: s.runDistributedJob,
	}
	if s.cfg.JobStoreDir != "" {
		store, err := jobs.NewDirStore(s.cfg.JobStoreDir)
		if err != nil {
			return nil, err
		}
		jcfg.Store = store
	}
	return jobs.New(jcfg)
}

// runDistributedJob executes one queued distribute-flagged job through the
// coordinator's worker fleet.
func (s *service) runDistributedJob(ctx context.Context, qasmSrc string, opts hsfsim.Options) (*hsfsim.Result, error) {
	var method string
	switch opts.Method {
	case hsfsim.StandardHSF:
		method = "standard"
	case hsfsim.JointHSF:
		method = "joint"
	default:
		return nil, fmt.Errorf("method %q cannot be distributed; use \"standard\" or \"joint\"", opts.Method)
	}
	job := &dist.Job{
		QASM:            qasmSrc,
		Method:          method,
		CutPos:          opts.CutPos,
		MaxBlockQubits:  opts.MaxBlockQubits,
		MaxAmplitudes:   opts.MaxAmplitudes,
		Tol:             opts.Tol,
		UseAnalytic:     opts.UseAnalyticCascades,
		FusionMaxQubits: opts.FusionMaxQubits,
	}
	if opts.BlockStrategy == hsfsim.BlockWindow {
		job.Strategy = "window"
	}
	if opts.Backend != hsfsim.BackendDense {
		job.Backend = opts.Backend.String()
	}
	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, opts.Timeout, hsfsim.ErrTimeout)
		defer cancel()
	}
	res, err := s.coord.Run(ctx, job, dist.RunOptions{})
	if err != nil {
		return nil, err
	}
	return &hsfsim.Result{
		Method:          opts.Method,
		Amplitudes:      res.Amplitudes,
		NumPaths:        res.NumPaths,
		Log2Paths:       res.Log2Paths,
		PathsSimulated:  res.PathsSimulated,
		NumCuts:         res.NumCuts,
		NumBlocks:       res.NumBlocks,
		NumSeparateCuts: res.NumSeparateCuts,
	}, nil
}

// handleJobSubmit enqueues one job: parse, resolve options exactly like
// /simulate, and admit through the manager. 202 + snapshot on success.
func (s *service) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r.Context())
	var req JobSubmitRequest
	if !s.decode(w, r, &req) {
		return
	}
	c, err := parseCircuit(req.QASM)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err, reqID)
		return
	}
	opts, status, err := s.simulateOptions(&req.SimulateRequest, c.NumQubits)
	if err != nil {
		writeErr(w, status, err, reqID)
		return
	}
	if req.Distribute && opts.Method == hsfsim.Schrodinger {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("method %q cannot be distributed; use \"standard\" or \"joint\"", req.Method), reqID)
		return
	}
	// Jobs outlive the HTTP request, so the deadline travels as an option
	// instead of riding the request context.
	if req.TimeoutMillis > 0 {
		d := time.Duration(req.TimeoutMillis) * time.Millisecond
		if s.cfg.MaxTimeout > 0 && d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		opts.Timeout = d
	}
	_, parentSC := trace.FromContext(r.Context())
	snap, err := s.jobs.Submit(jobs.Request{
		Tenant:      req.Tenant,
		Priority:    req.Priority,
		RequestID:   reqID,
		TraceParent: parentSC,
		QASM:        req.QASM,
		Circuit:     c,
		Distribute:  req.Distribute,
		Opts:        opts,
	})
	if err != nil {
		s.writeJobSubmitErr(w, err, reqID)
		return
	}
	w.Header().Set("Location", "/jobs/"+snap.ID)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(snap)
}

// writeJobSubmitErr maps admission failures onto HTTP statuses: shed work
// (queue full, quota) gets 429 with the manager's drain-aware Retry-After,
// over-budget work 422, a closed manager 503, everything else 400.
func (s *service) writeJobSubmitErr(w http.ResponseWriter, err error, reqID string) {
	var qf *jobs.QueueFullError
	var qe *jobs.QuotaError
	switch {
	case errors.As(err, &qf):
		metricShed429.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(qf.RetryAfter))
		writeErr(w, http.StatusTooManyRequests, err, reqID)
	case errors.As(err, &qe):
		metricShed429.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(qe.RetryAfter))
		writeErr(w, http.StatusTooManyRequests, err, reqID)
	case errors.Is(err, hsfsim.ErrBudget):
		writeErr(w, http.StatusUnprocessableEntity, err, reqID)
	case errors.Is(err, jobs.ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, err, reqID)
	default:
		writeErr(w, http.StatusBadRequest, err, reqID)
	}
}

// retryAfterSeconds renders a backoff hint as the integer-seconds form of
// the Retry-After header, never below 1.
func retryAfterSeconds(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *service) handleJobList(w http.ResponseWriter, r *http.Request) {
	list := s.jobs.List(r.URL.Query().Get("tenant"))
	if list == nil {
		list = []jobs.Snapshot{}
	}
	writeJSON(w, JobListResponse{Jobs: list})
}

func (s *service) handleJobGet(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r.Context())
	snap, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err, reqID)
		return
	}
	writeJSON(w, snap)
}

func (s *service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r.Context())
	id := r.PathValue("id")
	snap, err := s.jobs.Cancel(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err, reqID)
		return
	}
	s.cfg.Logger.Printf("%s cancel job=%s state=%s", reqID, id, snap.State)
	writeJSON(w, snap)
}

// handleJobResult serves a done job's full result in the /simulate response
// shape. Unfinished jobs get 409 so pollers can tell "not yet" from "gone".
func (s *service) handleJobResult(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r.Context())
	id := r.PathValue("id")
	snap, err := s.jobs.Get(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err, reqID)
		return
	}
	res, err := s.jobs.Result(id)
	switch {
	case err == nil:
	case errors.Is(err, jobs.ErrNoResult):
		writeErr(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; no result", id, snap.State), reqID)
		return
	case snap.State == jobs.StateFailed:
		writeErr(w, http.StatusConflict, fmt.Errorf("job %s failed: %w", id, err), reqID)
		return
	default:
		writeErr(w, http.StatusInternalServerError, err, reqID)
		return
	}
	resp := SimulateResponse{
		Method:         res.Method.String(),
		NumQubits:      snap.NumQubits,
		NumPaths:       res.NumPaths,
		Log2Paths:      res.Log2Paths,
		NumCuts:        res.NumCuts,
		NumBlocks:      res.NumBlocks,
		PreprocessMs:   float64(res.PreprocessTime.Microseconds()) / 1000,
		SimMs:          float64(res.SimTime.Microseconds()) / 1000,
		PathsSimulated: res.PathsSimulated,
	}
	resp.fillAmplitudes(res.Amplitudes)
	writeJSON(w, resp)
}

// handleJobEvents streams a job's lifecycle as Server-Sent Events: a
// "progress" event per transition or tick while the job is live, then — for
// done jobs — the full amplitude vector in "amplitudes" chunks (unbounded by
// the /simulate echo cap; chunking keeps frames small), and finally one
// terminal event named after the final state.
func (s *service) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	reqID := requestID(r.Context())
	id := r.PathValue("id")
	ch, stop, err := s.jobs.Watch(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err, reqID)
		return
	}
	defer stop()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, errors.New("streaming unsupported"), reqID)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	emit := func(event string, v any) {
		data, merr := json.Marshal(v)
		if merr != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}

	tick := time.NewTicker(500 * time.Millisecond)
	defer tick.Stop()
	var snap jobs.Snapshot
	for {
		snap, err = s.jobs.Get(id)
		if err != nil {
			return
		}
		if snap.State.Terminal() {
			break
		}
		emit("progress", snap)
		select {
		case <-r.Context().Done():
			s.cfg.Logger.Printf("%s events job=%s: client closed stream", reqID, id)
			return
		case <-ch:
		case <-tick.C:
		}
	}
	if snap.State == jobs.StateDone {
		res, rerr := s.jobs.Result(id)
		if rerr == nil {
			total := len(res.Amplitudes)
			for off := 0; off < total; off += JobEventChunk {
				if r.Context().Err() != nil {
					return
				}
				end := off + JobEventChunk
				if end > total {
					end = total
				}
				chunk := AmplitudeChunk{Offset: off, Total: total}
				chunk.Amplitudes = make([]Amplitude, end-off)
				for i, a := range res.Amplitudes[off:end] {
					chunk.Amplitudes[i] = Amplitude{Re: real(a), Im: imag(a)}
				}
				emit("amplitudes", chunk)
			}
		}
	}
	emit(snap.State.String(), snap)
	s.cfg.Logger.Printf("%s events job=%s: stream complete state=%s", reqID, id, snap.State)
}
