package par

import (
	"runtime"
	"testing"
)

func TestReserveRelease(t *testing.T) {
	if got := Reserved(); got != 0 {
		t.Fatalf("initial Reserved() = %d, want 0", got)
	}
	p := runtime.GOMAXPROCS(0)
	release := Reserve(3)
	if got := Reserved(); got != 3 {
		t.Fatalf("Reserved() = %d after Reserve(3), want 3", got)
	}
	want := p - 3
	if want < 1 {
		want = 1
	}
	if got := Inner(); got != want {
		t.Fatalf("Inner() = %d with 3 reserved and GOMAXPROCS=%d, want %d", got, p, want)
	}
	release()
	release() // idempotent
	if got := Reserved(); got != 0 {
		t.Fatalf("Reserved() = %d after release, want 0", got)
	}
}

func TestInnerFloorsAtOne(t *testing.T) {
	release := Reserve(runtime.GOMAXPROCS(0) + 8)
	defer release()
	if got := Inner(); got != 1 {
		t.Fatalf("Inner() = %d with over-reserved budget, want 1", got)
	}
}

func TestReserveNegative(t *testing.T) {
	release := Reserve(-5)
	defer release()
	if got := Reserved(); got != 0 {
		t.Fatalf("Reserved() = %d after Reserve(-5), want 0", got)
	}
}
