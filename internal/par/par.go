// Package par is the process-wide parallelism budget shared between the HSF
// path workers and the gate-level data parallelism inside statevec kernels.
//
// Without a shared budget the two layers oversubscribe each other: an HSF run
// with GOMAXPROCS path workers applying gates to ≥2^14-amplitude states would
// spawn GOMAXPROCS goroutines per worker per gate, multiplying runnable
// goroutines by the core count for no throughput gain. Instead, coarse-grained
// consumers (path worker pools, anything that holds cores for a whole run)
// Reserve their worker count up front, and fine-grained consumers ask Inner
// for the cores left over. When reservations reach GOMAXPROCS, Inner returns
// 1 and the gate kernels degrade to sequential loops instead of spawning
// goroutines.
//
// The budget is advisory and cooperative — nothing blocks on it — so a
// mistaken double-reservation degrades to sequential kernels, never to
// deadlock.
package par

import (
	"runtime"
	"sync/atomic"
)

// reserved counts cores currently claimed by coarse-grained worker pools.
var reserved atomic.Int64

// Reserve claims n cores of the budget for a coarse-grained consumer (an HSF
// path-worker pool) and returns a release function. The release function is
// idempotent. n < 0 is treated as 0.
func Reserve(n int) (release func()) {
	if n < 0 {
		n = 0
	}
	reserved.Add(int64(n))
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			reserved.Add(int64(-n))
		}
	}
}

// Reserved returns the cores currently claimed via Reserve.
func Reserved() int { return int(reserved.Load()) }

// Inner returns how many goroutines a fine-grained data-parallel section may
// use right now: GOMAXPROCS minus the outstanding reservations, floored at 1
// (the caller's own goroutine always proceeds sequentially).
func Inner() int {
	n := runtime.GOMAXPROCS(0) - int(reserved.Load())
	if n < 1 {
		return 1
	}
	return n
}
