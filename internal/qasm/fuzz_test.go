package qasm

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics on arbitrary input — it must
// either produce a circuit or a clean error. Run with `go test -fuzz=Parse`
// for continuous fuzzing; the seed corpus doubles as a regression suite.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"OPENQASM 2.0;\nqreg q[2];\nh q[0];",
		"qreg q[3]; cx q[0],q[2]; rzz(0.5) q[1],q[2];",
		"qreg q[1]; rx(pi/2) q[0];",
		"qreg q[1]; rx(-2*pi) q[0];",
		"qreg q[0];",
		"qreg q[2]\nh q[0]",
		"h q[0];",
		"qreg q[2]; mystery q[0];",
		"qreg q[2]; cx q[0];",
		"qreg q[2]; rx() q[0];",
		"qreg q[2]; rx(0.3 q[0];",
		"qreg q[999999]; h q[0];",
		"qreg q[2]; h q[-1];",
		"qreg q[2]; h q[99];",
		"// only a comment",
		"qreg q[2]; u3(1,2,3) q[1]; barrier q; creg c[2];",
		"qreg\tq[2];\tccx\tq[0],q[1],q[1];",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src))
		if err == nil && c == nil {
			t.Fatal("nil circuit without error")
		}
		if c != nil && err == nil {
			// Whatever parses must be a structurally valid circuit.
			if vErr := c.Validate(); vErr != nil {
				t.Fatalf("parser accepted invalid circuit: %v", vErr)
			}
		}
	})
}
