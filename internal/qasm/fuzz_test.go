package qasm

import (
	"strings"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
)

// exampleSeeds renders the circuit families the examples exercise
// (quickstart Bell+cascade, QAOA-MaxCut rings, supremacy-style mixed
// layers) through Write, so the corpus always contains well-formed programs
// in the dialect the daemon actually receives.
func exampleSeeds(f *testing.F) []string {
	var seeds []string
	add := func(c *circuit.Circuit) {
		var sb strings.Builder
		if err := Write(&sb, c); err != nil {
			f.Fatalf("writing seed circuit: %v", err)
		}
		seeds = append(seeds, sb.String())
	}

	// quickstart: Bell pair feeding an RZZ cascade.
	quick := circuit.New(4)
	quick.Append(gate.H(0), gate.CNOT(0, 1), gate.RZZ(0.8, 1, 2), gate.RZZ(0.3, 1, 3))
	add(quick)

	// qaoa_maxcut: one QAOA layer on a 5-cycle.
	ring := circuit.New(5)
	for q := 0; q < 5; q++ {
		ring.Append(gate.H(q))
	}
	for q := 0; q < 5; q++ {
		ring.Append(gate.RZZ(0.4, q, (q+1)%5))
	}
	for q := 0; q < 5; q++ {
		ring.Append(gate.RX(1.1, q))
	}
	add(ring)

	// supremacy-style: alternating single-qubit layers and entanglers.
	sup := circuit.New(6)
	for layer := 0; layer < 3; layer++ {
		for q := 0; q < 6; q++ {
			if (q+layer)%2 == 0 {
				sup.Append(gate.RX(0.3*float64(layer+1), q))
			} else {
				sup.Append(gate.RZ(0.7*float64(q+1), q))
			}
		}
		for q := layer % 2; q+1 < 6; q += 2 {
			sup.Append(gate.CZ(q, q+1))
		}
	}
	add(sup)
	return seeds
}

// FuzzParse asserts the parser never panics on arbitrary input — it must
// either produce a circuit or a clean error. Run with `go test -fuzz=Parse`
// for continuous fuzzing; the seed corpus doubles as a regression suite.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"OPENQASM 2.0;\nqreg q[2];\nh q[0];",
		"qreg q[3]; cx q[0],q[2]; rzz(0.5) q[1],q[2];",
		"qreg q[1]; rx(pi/2) q[0];",
		"qreg q[1]; rx(-2*pi) q[0];",
		"qreg q[0];",
		"qreg q[2]\nh q[0]",
		"h q[0];",
		"qreg q[2]; mystery q[0];",
		"qreg q[2]; cx q[0];",
		"qreg q[2]; rx() q[0];",
		"qreg q[2]; rx(0.3 q[0];",
		"qreg q[999999]; h q[0];",
		"qreg q[2]; h q[-1];",
		"qreg q[2]; h q[99];",
		"// only a comment",
		"qreg q[2]; u3(1,2,3) q[1]; barrier q; creg c[2];",
		"qreg\tq[2];\tccx\tq[0],q[1],q[1];",
		// Parser stress: malformed indices, duplicate registers, huge
		// angles, nested parens, truncated statements.
		"qreg q[2]; qreg q[3]; h q[0];",
		"qreg q[2]; rzz(((0.5))) q[0],q[1];",
		"qreg q[2]; rx(1e308*10) q[0];",
		"qreg q[2]; cx q[0] , q[1] ;;",
		"qreg q[2]; h q[",
		"qreg q[2]; rx(pi/0) q[0];",
		"qreg q[9223372036854775807]; h q[0];",
		"include \"qelib1.inc\"; qreg q[2]; h q[0];",
	}
	seeds = append(seeds, exampleSeeds(f)...)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src))
		if err == nil && c == nil {
			t.Fatal("nil circuit without error")
		}
		if c != nil && err == nil {
			// Whatever parses must be a structurally valid circuit.
			if vErr := c.Validate(); vErr != nil {
				t.Fatalf("parser accepted invalid circuit: %v", vErr)
			}
		}
	})
}
