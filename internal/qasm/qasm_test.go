package qasm

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

func roundTrip(t *testing.T, c *circuit.Circuit) *circuit.Circuit {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	out, err := Parse(&buf)
	if err != nil {
		t.Fatalf("parse failed: %v\nqasm:\n%s", err, buf.String())
	}
	return out
}

func TestRoundTripAllSupportedGates(t *testing.T) {
	c := circuit.New(4)
	c.Append(
		gate.I(0), gate.X(0), gate.Y(1), gate.Z(2), gate.H(3),
		gate.S(0), gate.Sdg(1), gate.T(2), gate.Tdg(3), gate.SX(0), gate.SY(1),
		gate.RX(0.7, 0), gate.RY(-1.2, 1), gate.RZ(2.5, 2), gate.P(0.9, 3),
		gate.U3(0.3, 1.4, -0.6, 0),
		gate.CNOT(0, 1), gate.CZ(1, 2), gate.CPhase(0.4, 2, 3),
		gate.SWAP(0, 2), gate.ISWAP(1, 3),
		gate.RZZ(0.8, 0, 3), gate.RXX(0.2, 1, 2), gate.RYY(-0.5, 0, 1),
		gate.CRX(0.6, 0, 1), gate.CRY(-0.2, 1, 2), gate.CRZ(1.1, 2, 3),
		gate.CCX(0, 1, 2), gate.CCZ(1, 2, 3),
	)
	out := roundTrip(t, c)
	if out.NumQubits != 4 {
		t.Fatalf("qubits = %d", out.NumQubits)
	}
	if !cmat.EqualTol(c.Unitary(), out.Unitary(), 1e-9) {
		t.Fatal("round trip changed the circuit unitary")
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for trial := 0; trial < 8; trial++ {
		c := circuit.New(3)
		for i := 0; i < 12; i++ {
			switch rng.Intn(5) {
			case 0:
				c.Append(gate.H(rng.Intn(3)))
			case 1:
				c.Append(gate.RZ(rng.NormFloat64()*3, rng.Intn(3)))
			case 2:
				c.Append(gate.RZZ(rng.NormFloat64(), 0, 1+rng.Intn(2)))
			case 3:
				c.Append(gate.CNOT(rng.Intn(3), (rng.Intn(2)+1+rng.Intn(3))%3))
			default:
				c.Append(gate.U3(rng.Float64(), rng.Float64(), rng.Float64(), rng.Intn(3)))
			}
		}
		// Deduplicate invalid CNOTs (same control/target) defensively.
		valid := circuit.New(3)
		for i := range c.Gates {
			g := c.Gates[i]
			if g.Validate() == nil {
				valid.Append(g)
			}
		}
		out := roundTrip(t, valid)
		if !cmat.EqualTol(valid.Unitary(), out.Unitary(), 1e-9) {
			t.Fatalf("trial %d: unitary mismatch", trial)
		}
	}
}

func TestParsePiExpressions(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rx(pi) q[0];
rz(pi/2) q[1];
ry(-pi/4) q[0];
p(2*pi) q[1];
rzz(0.5*pi) q[0],q[1];
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 5 {
		t.Fatalf("gates = %d", len(c.Gates))
	}
	if math.Abs(c.Gates[0].Params[0]-math.Pi) > 1e-15 {
		t.Fatalf("rx angle = %g", c.Gates[0].Params[0])
	}
	if math.Abs(c.Gates[2].Params[0]+math.Pi/4) > 1e-15 {
		t.Fatalf("ry angle = %g", c.Gates[2].Params[0])
	}
	if math.Abs(c.Gates[4].Params[0]-math.Pi/2) > 1e-15 {
		t.Fatalf("rzz angle = %g", c.Gates[4].Params[0])
	}
}

func TestParseCommentsAndBarriers(t *testing.T) {
	src := `// a comment
OPENQASM 2.0;
qreg q[1]; // trailing comment
h q[0];
barrier q;
creg c[1];
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 1 || c.Gates[0].Name != "h" {
		t.Fatalf("gates = %v", c.Gates)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"h q[0];",                        // gate before qreg
		"qreg q[0];",                     // zero size
		"qreg q[2];\nqreg r[2];",         // duplicate qreg
		"qreg q[2];\nmystery q[0];",      // unknown gate
		"qreg q[2];\nrx q[0];",           // missing parameter
		"qreg q[2];\ncx q[0];",           // missing qubit
		"qreg q[2];\nrx(nonsense) q[0];", // bad angle
		"qreg q[2];\nh q0;",              // bad qubit ref
		"",                               // empty input
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestWriteSWViaZYZ(t *testing.T) {
	// sw has no qelib1 primitive; the writer expands it exactly via ZYZ.
	c := circuit.New(1)
	c.Append(gate.SW(0))
	out := roundTrip(t, c)
	if !cmat.EqualTol(c.Unitary(), out.Unitary(), 1e-9) {
		t.Fatal("sw round trip changed the unitary")
	}
}

func TestWriteRejectsUnsupportedMultiQubit(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.New("fused", cmat.Identity(4), nil, 0, 1))
	var buf bytes.Buffer
	if err := Write(&buf, c); err == nil {
		t.Fatal("dense 2q gate should be rejected by the writer")
	}
}

func TestSYDecompositionExact(t *testing.T) {
	// The writer emits sdg/sx/s for sy; verify S·SX·S† = SY exactly.
	s := gate.S(0).Matrix
	sx := gate.SX(0).Matrix
	sdg := gate.Sdg(0).Matrix
	got := cmat.Mul(cmat.Mul(s, sx), sdg)
	if !cmat.EqualTol(got, gate.SY(0).Matrix, 1e-12) {
		t.Fatal("S·SX·S† != SY")
	}
}
