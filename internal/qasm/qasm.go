// Package qasm reads and writes a pragmatic subset of OpenQASM 2.0 covering
// every gate the simulator produces: single-qubit Cliffords and rotations,
// the two-qubit entanglers (cx, cz, cp, swap, iswap, rzz, rxx, ryy), and
// ccx/ccz. It exists so the CLI tools and examples can exchange circuits
// with other toolchains.
package qasm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
	"hsfsim/internal/synth"
)

// Write renders the circuit as OpenQASM 2.0.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\n", c.NumQubits)
	for i := range c.Gates {
		g := &c.Gates[i]
		line, err := gateLine(g)
		if err != nil {
			return fmt.Errorf("qasm: gate %d: %w", i, err)
		}
		fmt.Fprintln(bw, line)
	}
	return bw.Flush()
}

func gateLine(g *gate.Gate) (string, error) {
	args := make([]string, len(g.Qubits))
	for i, q := range g.Qubits {
		args[i] = fmt.Sprintf("q[%d]", q)
	}
	qs := strings.Join(args, ",")
	switch g.Name {
	case "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx",
		"cx", "cz", "swap", "iswap", "ccx", "ccz":
		return fmt.Sprintf("%s %s;", g.Name, qs), nil
	case "sy":
		// No qelib1 primitive; SY = S·SX·S† exactly (verified in tests), so
		// emit the three-gate decomposition in circuit order.
		q := args[0]
		return fmt.Sprintf("sdg %s;\nsx %s;\ns %s;", q, q, q), nil
	case "rx", "ry", "rz", "p", "cp", "rzz", "rxx", "ryy", "crx", "cry", "crz":
		return fmt.Sprintf("%s(%s) %s;", g.Name, formatFloat(g.Params[0]), qs), nil
	case "u3":
		return fmt.Sprintf("u3(%s,%s,%s) %s;",
			formatFloat(g.Params[0]), formatFloat(g.Params[1]), formatFloat(g.Params[2]), qs), nil
	default:
		// Any other single-qubit unitary (sw, peephole-fused gates, …) is
		// written as its exact ZYZ expansion, global phase included.
		if g.NumQubits() == 1 {
			z, err := synth.ZYZDecompose(g.Matrix)
			if err != nil {
				return "", fmt.Errorf("no QASM form for %q: %v", g.Name, err)
			}
			var lines []string
			for _, zg := range z.GatesWithPhase(g.Qubits[0]) {
				line, err := gateLine(&zg)
				if err != nil {
					return "", err
				}
				lines = append(lines, line)
			}
			if len(lines) == 0 {
				lines = append(lines, fmt.Sprintf("id %s;", qs))
			}
			return strings.Join(lines, "\n"), nil
		}
		return "", fmt.Errorf("no QASM form for %q", g.Name)
	}
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', 17, 64)
}

// Parse reads an OpenQASM 2.0 subset back into a circuit. Unsupported
// statements produce errors rather than silent drops.
func Parse(r io.Reader) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var c *circuit.Circuit
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		// A line may hold several ';'-terminated statements.
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := parseStatement(stmt, &c); err != nil {
				return nil, fmt.Errorf("qasm: line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("qasm: %w", err)
	}
	if c == nil {
		return nil, fmt.Errorf("qasm: no qreg declaration found")
	}
	return c, nil
}

func parseStatement(stmt string, c **circuit.Circuit) error {
	switch {
	case strings.HasPrefix(stmt, "OPENQASM"), strings.HasPrefix(stmt, "include"),
		strings.HasPrefix(stmt, "creg"), strings.HasPrefix(stmt, "barrier"):
		return nil
	case strings.HasPrefix(stmt, "qreg"):
		var name string
		var n int
		if _, err := fmt.Sscanf(stmt, "qreg %1s[%d]", &name, &n); err != nil {
			// Retry with a general pattern: qreg <ident>[<n>]
			open := strings.Index(stmt, "[")
			close_ := strings.Index(stmt, "]")
			if open < 0 || close_ < open {
				return fmt.Errorf("bad qreg %q", stmt)
			}
			v, err := strconv.Atoi(stmt[open+1 : close_])
			if err != nil {
				return fmt.Errorf("bad qreg size in %q", stmt)
			}
			n = v
		}
		if *c != nil {
			return fmt.Errorf("multiple qreg declarations")
		}
		if n <= 0 {
			return fmt.Errorf("qreg size %d", n)
		}
		*c = circuit.New(n)
		return nil
	}
	if *c == nil {
		return fmt.Errorf("gate before qreg")
	}
	name, params, qubits, err := splitGateStmt(stmt)
	if err != nil {
		return err
	}
	g, err := buildGate(name, params, qubits)
	if err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return err
	}
	if g.MaxQubit() >= (*c).NumQubits {
		return fmt.Errorf("qubit %d out of range for qreg[%d]", g.MaxQubit(), (*c).NumQubits)
	}
	(*c).Append(g)
	return nil
}

// splitGateStmt parses "name(p1,p2) q[a],q[b]".
func splitGateStmt(stmt string) (name string, params []float64, qubits []int, err error) {
	head := stmt
	rest := ""
	if sp := strings.IndexAny(stmt, " \t"); sp >= 0 {
		head, rest = stmt[:sp], strings.TrimSpace(stmt[sp+1:])
	}
	if par := strings.Index(head, "("); par >= 0 {
		name = head[:par]
		closing := strings.LastIndex(head, ")")
		if closing < par {
			return "", nil, nil, fmt.Errorf("unbalanced parentheses in %q", stmt)
		}
		for _, p := range strings.Split(head[par+1:closing], ",") {
			v, err := parseAngle(strings.TrimSpace(p))
			if err != nil {
				return "", nil, nil, err
			}
			params = append(params, v)
		}
	} else {
		name = head
	}
	for _, qref := range strings.Split(rest, ",") {
		qref = strings.TrimSpace(qref)
		open := strings.Index(qref, "[")
		close_ := strings.Index(qref, "]")
		if open < 0 || close_ < open {
			return "", nil, nil, fmt.Errorf("bad qubit reference %q", qref)
		}
		v, err := strconv.Atoi(qref[open+1 : close_])
		if err != nil {
			return "", nil, nil, fmt.Errorf("bad qubit index %q", qref)
		}
		qubits = append(qubits, v)
	}
	return name, params, qubits, nil
}

// parseAngle evaluates numeric literals and the common "pi"-expressions
// (pi, -pi, pi/2, 2*pi, ...).
func parseAngle(s string) (float64, error) {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v, nil
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	val := 0.0
	switch {
	case s == "pi":
		val = math.Pi
	case strings.HasPrefix(s, "pi/"):
		d, err := strconv.ParseFloat(s[3:], 64)
		if err != nil {
			return 0, fmt.Errorf("bad angle %q", s)
		}
		val = math.Pi / d
	case strings.HasSuffix(s, "*pi"):
		f, err := strconv.ParseFloat(s[:len(s)-3], 64)
		if err != nil {
			return 0, fmt.Errorf("bad angle %q", s)
		}
		val = f * math.Pi
	default:
		return 0, fmt.Errorf("bad angle %q", s)
	}
	if neg {
		val = -val
	}
	return val, nil
}

// gateArity lists (qubits, params) for every supported gate.
var gateArity = map[string][2]int{
	"id": {1, 0}, "x": {1, 0}, "y": {1, 0}, "z": {1, 0}, "h": {1, 0},
	"s": {1, 0}, "sdg": {1, 0}, "t": {1, 0}, "tdg": {1, 0}, "sx": {1, 0},
	"rx": {1, 1}, "ry": {1, 1}, "rz": {1, 1}, "p": {1, 1}, "u3": {1, 3},
	"cx": {2, 0}, "cz": {2, 0}, "cp": {2, 1}, "swap": {2, 0}, "iswap": {2, 0},
	"rzz": {2, 1}, "rxx": {2, 1}, "ryy": {2, 1},
	"crx": {2, 1}, "cry": {2, 1}, "crz": {2, 1},
	"ccx": {3, 0}, "ccz": {3, 0},
}

func buildGate(name string, params []float64, qubits []int) (gate.Gate, error) {
	arity, ok := gateArity[name]
	if !ok {
		return gate.Gate{}, fmt.Errorf("unsupported gate %q", name)
	}
	if len(qubits) != arity[0] {
		return gate.Gate{}, fmt.Errorf("%s expects %d qubits, got %d", name, arity[0], len(qubits))
	}
	if len(params) != arity[1] {
		return gate.Gate{}, fmt.Errorf("%s expects %d params, got %d", name, arity[1], len(params))
	}
	switch name {
	case "id":
		return gate.I(qubits[0]), nil
	case "x":
		return gate.X(qubits[0]), nil
	case "y":
		return gate.Y(qubits[0]), nil
	case "z":
		return gate.Z(qubits[0]), nil
	case "h":
		return gate.H(qubits[0]), nil
	case "s":
		return gate.S(qubits[0]), nil
	case "sdg":
		return gate.Sdg(qubits[0]), nil
	case "t":
		return gate.T(qubits[0]), nil
	case "tdg":
		return gate.Tdg(qubits[0]), nil
	case "sx":
		return gate.SX(qubits[0]), nil
	case "rx":
		return gate.RX(params[0], qubits[0]), nil
	case "ry":
		return gate.RY(params[0], qubits[0]), nil
	case "rz":
		return gate.RZ(params[0], qubits[0]), nil
	case "p":
		return gate.P(params[0], qubits[0]), nil
	case "u3":
		return gate.U3(params[0], params[1], params[2], qubits[0]), nil
	case "cx":
		return gate.CNOT(qubits[0], qubits[1]), nil
	case "cz":
		return gate.CZ(qubits[0], qubits[1]), nil
	case "cp":
		return gate.CPhase(params[0], qubits[0], qubits[1]), nil
	case "swap":
		return gate.SWAP(qubits[0], qubits[1]), nil
	case "iswap":
		return gate.ISWAP(qubits[0], qubits[1]), nil
	case "rzz":
		return gate.RZZ(params[0], qubits[0], qubits[1]), nil
	case "rxx":
		return gate.RXX(params[0], qubits[0], qubits[1]), nil
	case "ryy":
		return gate.RYY(params[0], qubits[0], qubits[1]), nil
	case "crx":
		return gate.CRX(params[0], qubits[0], qubits[1]), nil
	case "cry":
		return gate.CRY(params[0], qubits[0], qubits[1]), nil
	case "crz":
		return gate.CRZ(params[0], qubits[0], qubits[1]), nil
	case "ccx":
		return gate.CCX(qubits[0], qubits[1], qubits[2]), nil
	case "ccz":
		return gate.CCZ(qubits[0], qubits[1], qubits[2]), nil
	default:
		return gate.Gate{}, fmt.Errorf("unsupported gate %q", name)
	}
}
