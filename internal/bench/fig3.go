package bench

import (
	"fmt"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
)

// Fig3MaxDepth is the deepest prefix of the reconstructed Fig. 3a circuit.
const Fig3MaxDepth = 8

// Fig3Circuit reconstructs the paper's Fig. 3a example at depth d: a 4-qubit
// circuit cut between q1 and q2 whose first d two-qubit gates all cross the
// cut. The exact gate list is not published; this reconstruction preserves
// the documented properties — every prefix gate crosses the cut, the fourth
// gate is the SWAP whose Schmidt rank 4 causes the steeper standard-cutting
// slope from d=3 to d=4, and the remaining gates have rank 2.
func Fig3Circuit(d int) (*circuit.Circuit, error) {
	if d < 1 || d > Fig3MaxDepth {
		return nil, fmt.Errorf("bench: Fig. 3 depth %d outside 1..%d", d, Fig3MaxDepth)
	}
	gates := []gate.Gate{
		gate.CNOT(1, 2),
		gate.CZ(0, 2),
		gate.CNOT(3, 1),
		gate.SWAP(1, 2), // rank 4: the slope jump in Fig. 3b
		gate.CZ(1, 3),
		gate.CNOT(0, 2),
		gate.CZ(1, 2),
		gate.CNOT(2, 1),
	}
	c := circuit.New(4)
	c.Append(gates[:d]...)
	return c, nil
}

// Fig3CutPos is the cut location of the Fig. 3 example (between q1 and q2).
const Fig3CutPos = 1

// Fig3Point is one x-position of Fig. 3b.
type Fig3Point struct {
	Depth         int
	StandardPaths uint64
	JointPaths    uint64
}

// Fig3Series computes the standard and joint path counts for depths 1..max.
// Joint cutting uses the window strategy with the full 4-qubit budget, so
// the whole prefix becomes one block and the count saturates at
// 2^(2·2) = 16 (paper Sec. IV-B).
func Fig3Series(max int) ([]Fig3Point, error) {
	if max <= 0 || max > Fig3MaxDepth {
		max = Fig3MaxDepth
	}
	var out []Fig3Point
	p := cut.Partition{CutPos: Fig3CutPos}
	for d := 1; d <= max; d++ {
		c, err := Fig3Circuit(d)
		if err != nil {
			return nil, err
		}
		std, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyNone})
		if err != nil {
			return nil, err
		}
		jnt, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyWindow, MaxBlockQubits: 4})
		if err != nil {
			return nil, err
		}
		ns, _ := std.NumPaths()
		nj, _ := jnt.NumPaths()
		out = append(out, Fig3Point{Depth: d, StandardPaths: ns, JointPaths: nj})
	}
	return out, nil
}

// RenderFig3 formats the Fig. 3b series as a text table.
func RenderFig3(points []Fig3Point) string {
	t := &table{header: []string{"depth d", "standard n_p", "joint n_p"}}
	for _, p := range points {
		t.add(fmt.Sprintf("%d", p.Depth),
			fmt.Sprintf("%d", p.StandardPaths),
			fmt.Sprintf("%d", p.JointPaths))
	}
	return "Fig. 3b: number of paths vs. circuit depth (4-qubit example, cut q1|q2)\n" + t.String()
}
