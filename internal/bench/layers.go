package bench

import (
	"errors"
	"fmt"
	"time"

	"hsfsim"
	"hsfsim/internal/cut"
	"hsfsim/internal/qaoa"
)

// LayerPoint measures one QAOA depth of the multi-layer extension study:
// because mixer walls separate the problem layers, cascades regroup within
// each layer and both schemes scale exponentially in L — but joint cutting's
// base is the per-layer block count rather than the crossing-gate count.
type LayerPoint struct {
	Layers       int
	StandardLog2 float64
	JointLog2    float64
	JointTime    time.Duration
	JointTimed   bool
}

// LayerSeries measures L = 1..maxLayers on the given instance.
func LayerSeries(spec qaoa.InstanceSpec, maxLayers int, maxAmplitudes int, timeout time.Duration) ([]LayerPoint, error) {
	var out []LayerPoint
	for l := 1; l <= maxLayers; l++ {
		params := qaoa.Params{}
		for i := 0; i < l; i++ {
			params.Gammas = append(params.Gammas, 0.7/float64(i+1))
			params.Betas = append(params.Betas, 0.4/float64(i+1))
		}
		inst, err := spec.Generate(params)
		if err != nil {
			return nil, err
		}
		p := cut.Partition{CutPos: spec.CutPos()}
		std, err := cut.BuildPlan(inst.Circuit, cut.Options{Partition: p, Strategy: cut.StrategyNone})
		if err != nil {
			return nil, err
		}
		jnt, err := cut.BuildPlan(inst.Circuit, cut.Options{Partition: p, Strategy: cut.StrategyCascade})
		if err != nil {
			return nil, err
		}
		pt := LayerPoint{Layers: l, StandardLog2: std.Log2Paths(), JointLog2: jnt.Log2Paths()}
		res, err := hsfsim.Simulate(inst.Circuit, hsfsim.Options{
			Method: hsfsim.JointHSF, CutPos: spec.CutPos(),
			MaxAmplitudes: maxAmplitudes, Timeout: timeout,
		})
		switch {
		case err == nil:
			pt.JointTime = res.TotalTime()
		case errors.Is(err, hsfsim.ErrTimeout):
			pt.JointTimed = true
		default:
			return nil, fmt.Errorf("bench: layers=%d: %w", l, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderLayers formats the multi-layer study.
func RenderLayers(spec qaoa.InstanceSpec, points []LayerPoint, timeout time.Duration) string {
	t := &table{header: []string{"layers", "standard paths", "joint paths", "joint time"}}
	for _, p := range points {
		jt := p.JointTime.Round(time.Millisecond).String()
		if p.JointTimed {
			jt = fmt.Sprintf("timed out (%s)", timeout)
		}
		t.add(fmt.Sprintf("%d", p.Layers), fmtPaths(p.StandardLog2), fmtPaths(p.JointLog2), jt)
	}
	return fmt.Sprintf("Multi-layer extension: QAOA depth scaling on %s\n", spec.Name) + t.String()
}
