package bench

import (
	"strings"
	"testing"
	"time"

	"hsfsim/internal/qaoa"
)

func TestFig3Series(t *testing.T) {
	points, err := Fig3Series(Fig3MaxDepth)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != Fig3MaxDepth {
		t.Fatalf("points = %d", len(points))
	}
	// Standard cutting: ranks 2,2,2,4,2,2,2,2 -> 2,4,8,32,64,128,256,512.
	wantStd := []uint64{2, 4, 8, 32, 64, 128, 256, 512}
	for i, p := range points {
		if p.StandardPaths != wantStd[i] {
			t.Errorf("d=%d standard = %d, want %d", p.Depth, p.StandardPaths, wantStd[i])
		}
		// Joint cutting must saturate at the 2^(2·2) = 16 bound.
		if p.JointPaths > 16 {
			t.Errorf("d=%d joint = %d exceeds saturation bound 16", p.Depth, p.JointPaths)
		}
		if p.JointPaths > p.StandardPaths {
			t.Errorf("d=%d joint %d > standard %d", p.Depth, p.JointPaths, p.StandardPaths)
		}
	}
	// Deep prefixes must show a strict win (the figure's whole point).
	last := points[len(points)-1]
	if last.JointPaths >= last.StandardPaths {
		t.Fatalf("no strict win at d=%d: %d vs %d", last.Depth, last.JointPaths, last.StandardPaths)
	}
	out := RenderFig3(points)
	if !strings.Contains(out, "Fig. 3b") || !strings.Contains(out, "512") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestFig3CircuitValidity(t *testing.T) {
	if _, err := Fig3Circuit(0); err == nil {
		t.Fatal("depth 0 accepted")
	}
	if _, err := Fig3Circuit(9); err == nil {
		t.Fatal("depth 9 accepted")
	}
	c, err := Fig3Circuit(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCascadeSeries(t *testing.T) {
	points, err := CascadeSeries(6)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		k := i + 1
		if p.StandardPaths != 1<<uint(k) {
			t.Errorf("k=%d standard = %d, want %d", k, p.StandardPaths, 1<<uint(k))
		}
		if p.JointPaths != 2 {
			t.Errorf("k=%d joint = %d, want 2", k, p.JointPaths)
		}
	}
	out := RenderCascades(points)
	if !strings.Contains(out, "cascade") {
		t.Fatal("render missing content")
	}
}

func TestTable2SmallInstances(t *testing.T) {
	rows, err := RunTable2(qaoa.ScaledInstances()[:3])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Qubits != 16 {
			t.Errorf("%s: qubits = %d", r.Name, r.Qubits)
		}
		if r.CutPos != 7 {
			t.Errorf("%s: cut pos = %d", r.Name, r.CutPos)
		}
		if r.TwoQubitGates == 0 || r.SepCuts == 0 {
			t.Errorf("%s: empty instance", r.Name)
		}
		if r.Blocks == 0 {
			t.Errorf("%s: no cascades found", r.Name)
		}
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "q16-1") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestTable1TinyInstance(t *testing.T) {
	// A very small instance keeps this test fast while covering the whole
	// measurement loop, including ratios.
	spec := qaoa.InstanceSpec{Name: "tiny", SizeA: 5, SizeB: 5, PIntra: 0.8, PInter: 0.3, Seed: 42}
	cfg := RunConfig{MaxAmplitudes: 256, Timeout: 20 * time.Second, Repetitions: 2}
	row, err := RunTable1Instance(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.Joint.FullTime.Mean <= 0 {
		t.Fatal("joint run not measured")
	}
	if row.Standard.Paths <= row.Joint.Paths {
		t.Fatalf("paths: standard 2^%.1f <= joint 2^%.1f", row.Standard.Paths, row.Joint.Paths)
	}
	if row.SJ <= 0 || row.TJ <= 0 {
		t.Fatalf("ratios missing: S/J=%g T/J=%g", row.SJ, row.TJ)
	}
	out := RenderTable1([]*Table1Row{row}, cfg)
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "tiny") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestTable1TimeoutPath(t *testing.T) {
	// Dense crossing structure + tiny timeout: standard must time out and
	// T/J must be flagged as a lower bound.
	spec := qaoa.InstanceSpec{Name: "dense", SizeA: 7, SizeB: 7, PIntra: 0.8, PInter: 0.9, Seed: 4}
	cfg := RunConfig{MaxAmplitudes: 256, Timeout: 50 * time.Millisecond, Repetitions: 1}
	row, err := RunTable1Instance(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !row.Standard.TimedOut {
		t.Skip("standard finished within 50ms on this machine; nothing to assert")
	}
	if !row.TJLowerBound || row.TJ <= 0 {
		t.Fatalf("timed-out run should give a T/J lower bound, got %g (lb=%v)", row.TJ, row.TJLowerBound)
	}
	out := RenderTable1([]*Table1Row{row}, cfg)
	if !strings.Contains(out, "timed out") || !strings.Contains(out, ">=") {
		t.Fatalf("render missing timeout markers:\n%s", out)
	}
}

func TestSupremacyRows(t *testing.T) {
	cases := DefaultSupremacyCases()[:2] // cz + one iswap
	rows, err := RunSupremacy(cases, 1024, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.JointLog2 > r.StandardLog2 {
			t.Errorf("%s: joint paths exceed standard", r.Name)
		}
	}
	// The iSWAP case must find blocks and strictly reduce paths.
	isw := rows[1]
	if isw.Blocks == 0 || isw.JointLog2 >= isw.StandardLog2 {
		t.Errorf("iswap case: blocks=%d joint=%.1f std=%.1f", isw.Blocks, isw.JointLog2, isw.StandardLog2)
	}
	out := RenderSupremacy(rows, 20*time.Second)
	if !strings.Contains(out, "iswap-4x4-d6") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestSummarize(t *testing.T) {
	tm := summarize([]float64{1, 2, 3})
	if tm.Mean != 2 {
		t.Fatalf("mean = %g", tm.Mean)
	}
	if tm.Std < 0.99 || tm.Std > 1.01 {
		t.Fatalf("std = %g", tm.Std)
	}
	if s := summarize(nil); s.Mean != 0 || s.Std != 0 {
		t.Fatal("empty summarize")
	}
	if s := summarize([]float64{5}); s.Mean != 5 || s.Std != 0 {
		t.Fatal("single-sample summarize")
	}
}

func TestFmtPaths(t *testing.T) {
	if got := fmtPaths(10); got != "2^10" {
		t.Fatalf("fmtPaths(10) = %q", got)
	}
	if got := fmtPaths(10.5); got != "2^10.5" {
		t.Fatalf("fmtPaths(10.5) = %q", got)
	}
}
