package bench

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"hsfsim/internal/qaoa"
)

// parseCSV reads back what a writer produced and checks row shape.
func parseCSV(t *testing.T, buf *bytes.Buffer, wantCols int) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("csv has %d rows, want header + data", len(rows))
	}
	for i, r := range rows {
		if len(r) != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, len(r), wantCols)
		}
	}
	return rows
}

func TestFig3AndCascadeCSV(t *testing.T) {
	points, err := Fig3Series(4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig3CSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf, 3)
	if rows[0][0] != "depth" || rows[1][1] != "2" {
		t.Fatalf("fig3 csv content wrong: %v", rows[:2])
	}

	cpoints, err := CascadeSeries(3)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteCascadesCSV(&buf, cpoints); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 5)
}

func TestTableCSVs(t *testing.T) {
	specs := qaoa.ScaledInstances()[:2]
	t2, err := RunTable2(specs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTable2CSV(&buf, t2); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf, 11)
	if !strings.Contains(rows[1][0], "q16") {
		t.Fatalf("table2 csv content: %v", rows[1])
	}

	spec := qaoa.InstanceSpec{Name: "csv-tiny", SizeA: 4, SizeB: 4, PIntra: 0.8, PInter: 0.4, Seed: 6}
	t1row, err := RunTable1Instance(spec, RunConfig{MaxAmplitudes: 64, Timeout: 20 * time.Second, Repetitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteTable1CSV(&buf, []*Table1Row{t1row}); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 14)
}

func TestStudyCSVs(t *testing.T) {
	var buf bytes.Buffer

	lay, err := LayerSeries(qaoa.InstanceSpec{Name: "l", SizeA: 4, SizeB: 4, PIntra: 0.8, PInter: 0.4, Seed: 2}, 2, 64, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteLayersCSV(&buf, lay); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 5)

	buf.Reset()
	mb, err := ManybodySeries(6, 3, 64, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteManybodyCSV(&buf, mb); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 6)

	buf.Reset()
	cases, err := DefaultBackendCases()
	if err != nil {
		t.Fatal(err)
	}
	bk, err := RunBackends(cases[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBackendsCSV(&buf, bk); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 10)

	buf.Reset()
	sup, err := RunSupremacy(DefaultSupremacyCases()[:1], 64, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSupremacyCSV(&buf, sup); err != nil {
		t.Fatal(err)
	}
	parseCSV(t, &buf, 9)
}
