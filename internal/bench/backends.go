package bench

import (
	"fmt"
	"time"

	"hsfsim/internal/circuit"
	"hsfsim/internal/dd"
	"hsfsim/internal/gate"
	"hsfsim/internal/mps"
	"hsfsim/internal/qaoa"
	"hsfsim/internal/statevec"
)

// BackendRow compares the three statevector representations the paper's
// background surveys — plain arrays, decision diagrams, and tensor networks
// (MPS) — on one circuit: runtime plus the representation-size measure of
// each (amplitudes / DD nodes / max bond dimension).
type BackendRow struct {
	Name       string
	Qubits     int
	Gates      int
	ArrayTime  time.Duration
	ArrayAmps  int
	DDTime     time.Duration
	DDNodes    int
	MPSTime    time.Duration
	MPSMaxBond int
	MaxDiff    float64 // cross-check between backends (small circuits only)
}

// BackendCase is one benchmark circuit.
type BackendCase struct {
	Name    string
	Circuit *circuit.Circuit
	// Verify expands all three representations and cross-checks amplitudes
	// (exponential; keep for small circuits only).
	Verify bool
}

// DefaultBackendCases builds the comparison workloads: a GHZ chain (DD and
// MPS compress it), a QAOA layer (structured), and a random dense circuit
// (arrays win).
func DefaultBackendCases() ([]BackendCase, error) {
	var cases []BackendCase

	ghz := circuit.New(14)
	ghz.Append(gate.H(0))
	for q := 1; q < 14; q++ {
		ghz.Append(gate.CNOT(q-1, q))
	}
	cases = append(cases, BackendCase{Name: "ghz-14", Circuit: ghz, Verify: true})

	inst, err := qaoa.InstanceSpec{Name: "qaoa", SizeA: 6, SizeB: 6, PIntra: 0.8, PInter: 0.2, Seed: 9}.Generate(qaoa.SingleLayer())
	if err != nil {
		return nil, err
	}
	cases = append(cases, BackendCase{Name: "qaoa-12", Circuit: inst.Circuit, Verify: true})

	return cases, nil
}

// RunBackends measures every case on all three backends.
func RunBackends(cases []BackendCase) ([]*BackendRow, error) {
	var rows []*BackendRow
	for _, cs := range cases {
		c := cs.Circuit
		row := &BackendRow{Name: cs.Name, Qubits: c.NumQubits, Gates: len(c.Gates)}

		start := time.Now()
		arr := statevec.NewState(c.NumQubits)
		arr.ApplyAll(c.Gates)
		row.ArrayTime = time.Since(start)
		row.ArrayAmps = len(arr)

		start = time.Now()
		ddState := dd.New(c.NumQubits, 0)
		if err := ddState.ApplyCircuit(c); err != nil {
			return nil, fmt.Errorf("bench: %s dd: %w", cs.Name, err)
		}
		row.DDTime = time.Since(start)
		row.DDNodes = ddState.NumNodes()

		start = time.Now()
		mpsState := mps.New(c.NumQubits)
		if err := mpsState.ApplyCircuit(c); err != nil {
			return nil, fmt.Errorf("bench: %s mps: %w", cs.Name, err)
		}
		row.MPSTime = time.Since(start)
		row.MPSMaxBond = mpsState.MaxBondDim()

		if cs.Verify {
			dDD := statevec.MaxAbsDiff(ddState.ToStatevector(), arr)
			dMPS := statevec.MaxAbsDiff(mpsState.ToStatevector(), arr)
			row.MaxDiff = dDD
			if dMPS > row.MaxDiff {
				row.MaxDiff = dMPS
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderBackends formats the comparison.
func RenderBackends(rows []*BackendRow) string {
	t := &table{header: []string{
		"circuit", "qubits", "gates", "array time", "2^n amps", "DD time", "DD nodes", "MPS time", "max bond", "max diff",
	}}
	for _, r := range rows {
		t.add(r.Name,
			fmt.Sprintf("%d", r.Qubits),
			fmt.Sprintf("%d", r.Gates),
			r.ArrayTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", r.ArrayAmps),
			r.DDTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", r.DDNodes),
			r.MPSTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%d", r.MPSMaxBond),
			fmt.Sprintf("%.1e", r.MaxDiff))
	}
	return "Backend study: array vs. decision diagram vs. MPS (paper Background, refs [9]-[15])\n" + t.String()
}
