package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestWalkerBackendsAgree(t *testing.T) {
	cases, err := DefaultWalkerCases()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunWalker(cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cases) {
		t.Fatalf("rows = %d, want %d", len(rows), len(cases))
	}
	for _, r := range rows {
		// RunWalker already errors above 1e-12; pin the invariant here too so
		// a loosened threshold cannot slip through silently.
		if r.MaxDiff > 1e-12 {
			t.Errorf("%s: walker backends disagree by %g", r.Name, r.MaxDiff)
		}
		if r.Paths == 0 {
			t.Errorf("%s: no paths recorded", r.Name)
		}
	}
	out := RenderWalker(rows)
	if !strings.Contains(out, "qaoa-12-cascade") || !strings.Contains(out, "DD walk") {
		t.Fatalf("render missing content:\n%s", out)
	}
	var buf bytes.Buffer
	if err := WriteWalkerCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dense_s") {
		t.Fatalf("csv missing header:\n%s", buf.String())
	}
}
