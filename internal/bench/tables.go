package bench

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hsfsim"
	"hsfsim/internal/cut"
	"hsfsim/internal/qaoa"
)

// RunConfig controls the Table I measurement loop.
type RunConfig struct {
	// MaxAmplitudes is the number of output amplitudes (paper: 10^6).
	MaxAmplitudes int
	// Timeout bounds each standard-HSF run (paper: 1 h).
	Timeout time.Duration
	// Repetitions per method for mean/stddev (paper: 5).
	Repetitions int
	// Workers bounds parallelism (0: all CPUs).
	Workers int
	// SkipSchrodingerAbove skips the Schrödinger baseline for circuits with
	// more qubits than this (memory guard); 0 selects 26.
	SkipSchrodingerAbove int
}

// DefaultSmallConfig is the laptop-scale measurement configuration.
func DefaultSmallConfig() RunConfig {
	return RunConfig{
		MaxAmplitudes: 1 << 14,
		Timeout:       30 * time.Second,
		Repetitions:   3,
	}
}

// timing is a mean/stddev pair in seconds.
type timing struct {
	Mean, Std float64
}

func summarize(samples []float64) timing {
	if len(samples) == 0 {
		return timing{}
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(len(samples))
	var varsum float64
	for _, s := range samples {
		varsum += (s - mean) * (s - mean)
	}
	std := 0.0
	if len(samples) > 1 {
		std = math.Sqrt(varsum / float64(len(samples)-1))
	}
	return timing{Mean: mean, Std: std}
}

// MethodResult aggregates one method's measurements on one instance.
type MethodResult struct {
	FullTime timing // preprocessing + simulation
	SimTime  timing // simulation only (Table I's second line)
	Paths    float64
	TimedOut bool
	Skipped  bool
}

// Table1Row is one instance's measurements across the three methods.
type Table1Row struct {
	Name        string
	Schrodinger MethodResult
	Standard    MethodResult
	Joint       MethodResult
	// SJ = Schrödinger full time / joint full time;
	// TJ = standard full time / joint full time (a lower bound when the
	// standard run timed out, as in the paper).
	SJ, TJ       float64
	TJLowerBound bool
}

// RunTable1Instance measures one QAOA instance with all three methods.
func RunTable1Instance(spec qaoa.InstanceSpec, cfg RunConfig) (*Table1Row, error) {
	if cfg.Repetitions <= 0 {
		cfg.Repetitions = 1
	}
	skipAbove := cfg.SkipSchrodingerAbove
	if skipAbove <= 0 {
		skipAbove = 26
	}
	inst, err := spec.Generate(qaoa.SingleLayer())
	if err != nil {
		return nil, err
	}
	row := &Table1Row{Name: spec.Name}

	run := func(method hsfsim.Method) (MethodResult, error) {
		var mr MethodResult
		if method == hsfsim.Schrodinger && spec.NumQubits() > skipAbove {
			mr.Skipped = true
			return mr, nil
		}
		var fulls, sims []float64
		for rep := 0; rep < cfg.Repetitions; rep++ {
			res, err := hsfsim.Simulate(inst.Circuit, hsfsim.Options{
				Method:        method,
				CutPos:        spec.CutPos(),
				MaxAmplitudes: cfg.MaxAmplitudes,
				Workers:       cfg.Workers,
				Timeout:       cfg.Timeout,
			})
			if errors.Is(err, hsfsim.ErrTimeout) {
				mr.TimedOut = true
				break
			}
			if err != nil {
				return mr, err
			}
			fulls = append(fulls, res.TotalTime().Seconds())
			sims = append(sims, res.SimTime.Seconds())
			mr.Paths = res.Log2Paths
		}
		mr.FullTime = summarize(fulls)
		mr.SimTime = summarize(sims)
		return mr, nil
	}

	if row.Schrodinger, err = run(hsfsim.Schrodinger); err != nil {
		return nil, fmt.Errorf("bench: %s schrodinger: %w", spec.Name, err)
	}
	if row.Standard, err = run(hsfsim.StandardHSF); err != nil {
		return nil, fmt.Errorf("bench: %s standard: %w", spec.Name, err)
	}
	if row.Joint, err = run(hsfsim.JointHSF); err != nil {
		return nil, fmt.Errorf("bench: %s joint: %w", spec.Name, err)
	}
	// Path counts are known even when the run timed out.
	std, jnt, err := pathLogs(spec)
	if err != nil {
		return nil, err
	}
	row.Standard.Paths = std
	row.Joint.Paths = jnt

	if j := row.Joint.FullTime.Mean; j > 0 {
		if !row.Schrodinger.Skipped && !row.Schrodinger.TimedOut {
			row.SJ = row.Schrodinger.FullTime.Mean / j
		}
		if row.Standard.TimedOut {
			row.TJ = cfg.Timeout.Seconds() / j
			row.TJLowerBound = true
		} else {
			row.TJ = row.Standard.FullTime.Mean / j
		}
	}
	return row, nil
}

func pathLogs(spec qaoa.InstanceSpec) (std, jnt float64, err error) {
	inst, err := spec.Generate(qaoa.SingleLayer())
	if err != nil {
		return 0, 0, err
	}
	p := cut.Partition{CutPos: spec.CutPos()}
	sp, err := cut.BuildPlan(inst.Circuit, cut.Options{Partition: p, Strategy: cut.StrategyNone})
	if err != nil {
		return 0, 0, err
	}
	jp, err := cut.BuildPlan(inst.Circuit, cut.Options{Partition: p, Strategy: cut.StrategyCascade})
	if err != nil {
		return 0, 0, err
	}
	return sp.Log2Paths(), jp.Log2Paths(), nil
}

// RunTable1 measures every instance.
func RunTable1(specs []qaoa.InstanceSpec, cfg RunConfig) ([]*Table1Row, error) {
	var rows []*Table1Row
	for _, s := range specs {
		r, err := RunTable1Instance(s, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
	}
	return rows, nil
}

// RenderTable1 formats the measurements like the paper's Table I: per
// instance the first line shows full times (preprocessing included), the
// second line simulation-only times.
func RenderTable1(rows []*Table1Row, cfg RunConfig) string {
	t := &table{header: []string{
		"Circuit", "Schrödinger (s)", "Standard HSF (s)", "# Paths", "Joint HSF (s)", "# Paths", "S/J", "T/J",
	}}
	fmtTiming := func(m MethodResult) string {
		if m.Skipped {
			return "skipped"
		}
		if m.TimedOut {
			return fmt.Sprintf("timed out (%s)", cfg.Timeout)
		}
		return fmt.Sprintf("%s (%.3f)", fmtDur(m.FullTime.Mean), m.FullTime.Std)
	}
	fmtSim := func(m MethodResult) string {
		if m.Skipped || m.TimedOut {
			return ""
		}
		return fmt.Sprintf("%s (%.3f)", fmtDur(m.SimTime.Mean), m.SimTime.Std)
	}
	for _, r := range rows {
		sj := "-"
		if r.SJ > 0 {
			sj = fmt.Sprintf("%.3f", r.SJ)
		}
		tj := "-"
		if r.TJ > 0 {
			tj = fmt.Sprintf("%.3f", r.TJ)
			if r.TJLowerBound {
				tj = ">= " + tj
			}
		}
		t.add(r.Name,
			fmtTiming(r.Schrodinger),
			fmtTiming(r.Standard), fmtPaths(r.Standard.Paths),
			fmtTiming(r.Joint), fmtPaths(r.Joint.Paths),
			sj, tj)
		t.add("",
			fmtSim(r.Schrodinger),
			fmtSim(r.Standard), "",
			fmtSim(r.Joint), "",
			"", "")
	}
	head := fmt.Sprintf("Table I: QAOA runtimes (first %d amplitudes, %d repetitions, timeout %s)\n",
		cfg.MaxAmplitudes, cfg.Repetitions, cfg.Timeout)
	return head + t.String()
}

// Table2Row reports one instance's specification (paper Table II).
type Table2Row struct {
	Name          string
	Qubits        int
	CutPos        int
	TwoQubitGates int
	SizeA, SizeB  int
	PInter        float64
	PIntra        float64
	Blocks        int
	SepInPlan     int
	SepCuts       int // total crossing gates
}

// RunTable2 computes the specification rows.
func RunTable2(specs []qaoa.InstanceSpec) ([]*Table2Row, error) {
	var rows []*Table2Row
	for _, s := range specs {
		inst, err := s.Generate(qaoa.SingleLayer())
		if err != nil {
			return nil, err
		}
		p := cut.Partition{CutPos: s.CutPos()}
		plan, err := cut.BuildPlan(inst.Circuit, cut.Options{Partition: p, Strategy: cut.StrategyCascade})
		if err != nil {
			return nil, err
		}
		rows = append(rows, &Table2Row{
			Name:          s.Name,
			Qubits:        s.NumQubits(),
			CutPos:        s.CutPos(),
			TwoQubitGates: inst.Circuit.NumTwoQubitGates(),
			SizeA:         s.SizeA,
			SizeB:         s.SizeB,
			PInter:        s.PInter,
			PIntra:        s.PIntra,
			Blocks:        plan.NumBlocks(),
			SepInPlan:     plan.NumSeparateCuts(),
			SepCuts:       len(cut.CrossingGateIndices(inst.Circuit, p)),
		})
	}
	return rows, nil
}

// RenderTable2 formats the specification table.
func RenderTable2(rows []*Table2Row) string {
	t := &table{header: []string{
		"Circuit", "q", "cut pos.", "# 2-qubit gates", "sizes", "p_inter", "p_intra", "blocks + sep.", "sep. cuts",
	}}
	for _, r := range rows {
		t.add(r.Name,
			fmt.Sprintf("%d", r.Qubits),
			fmt.Sprintf("%d", r.CutPos),
			fmt.Sprintf("%d", r.TwoQubitGates),
			fmt.Sprintf("[%d,%d]", r.SizeA, r.SizeB),
			fmt.Sprintf("%.2f", r.PInter),
			fmt.Sprintf("%.2f", r.PIntra),
			fmt.Sprintf("%d+%d", r.Blocks, r.SepInPlan),
			fmt.Sprintf("%d", r.SepCuts))
	}
	return "Table II: QAOA instance specifications\n" + t.String()
}
