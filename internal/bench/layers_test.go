package bench

import (
	"strings"
	"testing"
	"time"

	"hsfsim/internal/qaoa"
)

func TestLayerSeriesScaling(t *testing.T) {
	spec := qaoa.InstanceSpec{Name: "layers-test", SizeA: 5, SizeB: 5, PIntra: 0.8, PInter: 0.3, Seed: 42}
	points, err := LayerSeries(spec, 3, 256, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		l := float64(i + 1)
		// Both schemes scale linearly in log-space with the layer count.
		if p.StandardLog2 != points[0].StandardLog2*l {
			t.Errorf("standard log2 at L=%d is %g, want %g", i+1, p.StandardLog2, points[0].StandardLog2*l)
		}
		if p.JointLog2 != points[0].JointLog2*l {
			t.Errorf("joint log2 at L=%d is %g, want %g", i+1, p.JointLog2, points[0].JointLog2*l)
		}
		if p.JointLog2 >= p.StandardLog2 {
			t.Errorf("joint not better at L=%d", i+1)
		}
	}
	out := RenderLayers(spec, points, 30*time.Second)
	if !strings.Contains(out, "layers-test") {
		t.Fatal("render missing instance name")
	}
}
