// Package bench is the experiment harness: it builds the paper's workloads,
// runs the three simulation methods under a timeout, and renders every table
// and figure of the evaluation (Table I, Table II, Fig. 3b, the Ex. 4
// cascade study, and the Sec. V supremacy extension) as text tables.
package bench

import (
	"fmt"
	"strings"
)

// table renders rows of cells with aligned columns.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

// fmtDur renders seconds with millisecond resolution.
func fmtDur(seconds float64) string {
	return fmt.Sprintf("%.3f", seconds)
}

// fmtPaths renders a path count as 2^k when k is integral, else as a number.
func fmtPaths(log2 float64) string {
	k := int(log2 + 0.5)
	if diff := log2 - float64(k); diff < 1e-9 && diff > -1e-9 {
		return fmt.Sprintf("2^%d", k)
	}
	return fmt.Sprintf("2^%.1f", log2)
}
