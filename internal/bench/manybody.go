package bench

import (
	"errors"
	"fmt"
	"time"

	"hsfsim"
	"hsfsim/internal/cut"
	"hsfsim/internal/trotter"
)

// ManybodyPoint measures HSF on a Trotterized Ising chain at one depth —
// the Richter-style many-body workload (paper ref [35]): exactly one bond
// crosses the cut, so standard HSF pays 2 paths per Trotter step while the
// memory footprint stays at 2^(n/2+1).
type ManybodyPoint struct {
	Steps        int
	StandardLog2 float64
	JointLog2    float64
	HSFTime      time.Duration
	HSFTimed     bool
	SchrodTime   time.Duration
}

// ManybodySeries measures steps = 1..maxSteps on an n-site chain.
func ManybodySeries(n, maxSteps int, maxAmplitudes int, timeout time.Duration) ([]ManybodyPoint, error) {
	var out []ManybodyPoint
	cutPos := n/2 - 1
	for s := 1; s <= maxSteps; s++ {
		c, err := trotter.BuildIsing(
			trotter.Ising{N: n, J: 1, H: 0.5},
			trotter.Options{Steps: s, Dt: 0.1, PlusStart: true},
		)
		if err != nil {
			return nil, err
		}
		p := cut.Partition{CutPos: cutPos}
		std, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyNone})
		if err != nil {
			return nil, err
		}
		jnt, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyCascade})
		if err != nil {
			return nil, err
		}
		pt := ManybodyPoint{Steps: s, StandardLog2: std.Log2Paths(), JointLog2: jnt.Log2Paths()}

		schrod, err := hsfsim.Simulate(c, hsfsim.Options{Method: hsfsim.Schrodinger, MaxAmplitudes: maxAmplitudes})
		if err != nil {
			return nil, err
		}
		pt.SchrodTime = schrod.TotalTime()

		hres, err := hsfsim.Simulate(c, hsfsim.Options{
			Method: hsfsim.StandardHSF, CutPos: cutPos,
			MaxAmplitudes: maxAmplitudes, Timeout: timeout,
		})
		switch {
		case err == nil:
			pt.HSFTime = hres.TotalTime()
		case errors.Is(err, hsfsim.ErrTimeout):
			pt.HSFTimed = true
		default:
			return nil, fmt.Errorf("bench: manybody steps=%d: %w", s, err)
		}
		out = append(out, pt)
	}
	return out, nil
}

// RenderManybody formats the many-body study.
func RenderManybody(n int, points []ManybodyPoint, timeout time.Duration) string {
	t := &table{header: []string{"Trotter steps", "HSF paths (std)", "HSF paths (joint)", "HSF time", "Schrödinger time"}}
	for _, p := range points {
		ht := p.HSFTime.Round(time.Millisecond).String()
		if p.HSFTimed {
			ht = fmt.Sprintf("timed out (%s)", timeout)
		}
		t.add(fmt.Sprintf("%d", p.Steps),
			fmtPaths(p.StandardLog2),
			fmtPaths(p.JointLog2),
			ht,
			p.SchrodTime.Round(time.Millisecond).String())
	}
	return fmt.Sprintf("Many-body extension (ref [35]): Trotterized %d-site Ising chain, cut at the middle bond\n", n) + t.String()
}
