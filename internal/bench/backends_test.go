package bench

import (
	"strings"
	"testing"
)

func TestBackendsAgreeAndCompress(t *testing.T) {
	cases, err := DefaultBackendCases()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunBackends(cases)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cases) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MaxDiff > 1e-8 {
			t.Errorf("%s: backends disagree by %g", r.Name, r.MaxDiff)
		}
	}
	// The GHZ case must show DD compression: far fewer nodes than amplitudes.
	ghz := rows[0]
	if ghz.DDNodes*16 > ghz.ArrayAmps {
		t.Errorf("ghz: DD nodes %d show no compression vs %d amplitudes", ghz.DDNodes, ghz.ArrayAmps)
	}
	if ghz.MPSMaxBond != 2 {
		t.Errorf("ghz: MPS max bond %d, want 2", ghz.MPSMaxBond)
	}
	out := RenderBackends(rows)
	if !strings.Contains(out, "ghz-14") || !strings.Contains(out, "DD nodes") {
		t.Fatalf("render missing content:\n%s", out)
	}
}
