package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV writers for every study, so plots and notebooks can consume the
// measurements without scraping the text tables.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// WriteTable1CSV emits the Table I measurements.
func WriteTable1CSV(w io.Writer, rows []*Table1Row) error {
	header := []string{
		"circuit",
		"schrodinger_full_s", "schrodinger_sim_s", "schrodinger_skipped",
		"standard_full_s", "standard_sim_s", "standard_timed_out", "standard_log2_paths",
		"joint_full_s", "joint_sim_s", "joint_log2_paths",
		"s_over_j", "t_over_j", "t_over_j_lower_bound",
	}
	var data [][]string
	for _, r := range rows {
		data = append(data, []string{
			r.Name,
			f(r.Schrodinger.FullTime.Mean), f(r.Schrodinger.SimTime.Mean), strconv.FormatBool(r.Schrodinger.Skipped),
			f(r.Standard.FullTime.Mean), f(r.Standard.SimTime.Mean), strconv.FormatBool(r.Standard.TimedOut), f(r.Standard.Paths),
			f(r.Joint.FullTime.Mean), f(r.Joint.SimTime.Mean), f(r.Joint.Paths),
			f(r.SJ), f(r.TJ), strconv.FormatBool(r.TJLowerBound),
		})
	}
	return writeCSV(w, header, data)
}

// WriteTable2CSV emits the Table II specifications.
func WriteTable2CSV(w io.Writer, rows []*Table2Row) error {
	header := []string{
		"circuit", "qubits", "cut_pos", "two_qubit_gates", "size_a", "size_b",
		"p_inter", "p_intra", "blocks", "separate_in_plan", "separate_cuts",
	}
	var data [][]string
	for _, r := range rows {
		data = append(data, []string{
			r.Name, strconv.Itoa(r.Qubits), strconv.Itoa(r.CutPos),
			strconv.Itoa(r.TwoQubitGates), strconv.Itoa(r.SizeA), strconv.Itoa(r.SizeB),
			f(r.PInter), f(r.PIntra),
			strconv.Itoa(r.Blocks), strconv.Itoa(r.SepInPlan), strconv.Itoa(r.SepCuts),
		})
	}
	return writeCSV(w, header, data)
}

// WriteFig3CSV emits the Fig. 3b series.
func WriteFig3CSV(w io.Writer, points []Fig3Point) error {
	header := []string{"depth", "standard_paths", "joint_paths"}
	var data [][]string
	for _, p := range points {
		data = append(data, []string{
			strconv.Itoa(p.Depth),
			strconv.FormatUint(p.StandardPaths, 10),
			strconv.FormatUint(p.JointPaths, 10),
		})
	}
	return writeCSV(w, header, data)
}

// WriteCascadesCSV emits the Ex. 4 cascade study.
func WriteCascadesCSV(w io.Writer, points []CascadePoint) error {
	header := []string{"length", "standard_paths", "joint_paths", "numeric_prep_s", "analytic_prep_s"}
	var data [][]string
	for _, p := range points {
		data = append(data, []string{
			strconv.Itoa(p.Length),
			strconv.FormatUint(p.StandardPaths, 10),
			strconv.FormatUint(p.JointPaths, 10),
			f(p.NumericTime.Seconds()),
			f(p.AnalyticTime.Seconds()),
		})
	}
	return writeCSV(w, header, data)
}

// WriteSupremacyCSV emits the Sec. V extension rows.
func WriteSupremacyCSV(w io.Writer, rows []*SupremacyRow) error {
	header := []string{
		"circuit", "qubits", "standard_log2_paths", "joint_log2_paths", "blocks",
		"standard_s", "standard_timed_out", "joint_s", "joint_timed_out",
	}
	var data [][]string
	for _, r := range rows {
		data = append(data, []string{
			r.Name, strconv.Itoa(r.Qubits), f(r.StandardLog2), f(r.JointLog2),
			strconv.Itoa(r.Blocks),
			f(r.StandardTime.Seconds()), strconv.FormatBool(r.StandardTimed),
			f(r.JointTime.Seconds()), strconv.FormatBool(r.JointTimed),
		})
	}
	return writeCSV(w, header, data)
}

// WriteLayersCSV emits the multi-layer study.
func WriteLayersCSV(w io.Writer, points []LayerPoint) error {
	header := []string{"layers", "standard_log2_paths", "joint_log2_paths", "joint_s", "joint_timed_out"}
	var data [][]string
	for _, p := range points {
		data = append(data, []string{
			strconv.Itoa(p.Layers), f(p.StandardLog2), f(p.JointLog2),
			f(p.JointTime.Seconds()), strconv.FormatBool(p.JointTimed),
		})
	}
	return writeCSV(w, header, data)
}

// WriteManybodyCSV emits the many-body study.
func WriteManybodyCSV(w io.Writer, points []ManybodyPoint) error {
	header := []string{"steps", "standard_log2_paths", "joint_log2_paths", "hsf_s", "hsf_timed_out", "schrodinger_s"}
	var data [][]string
	for _, p := range points {
		data = append(data, []string{
			strconv.Itoa(p.Steps), f(p.StandardLog2), f(p.JointLog2),
			f(p.HSFTime.Seconds()), strconv.FormatBool(p.HSFTimed), f(p.SchrodTime.Seconds()),
		})
	}
	return writeCSV(w, header, data)
}

// WriteWalkerCSV emits the walker backend study.
func WriteWalkerCSV(w io.Writer, rows []*WalkerRow) error {
	header := []string{"plan", "qubits", "gates", "paths", "dense_s", "dd_s", "max_diff"}
	var data [][]string
	for _, r := range rows {
		data = append(data, []string{
			r.Name, strconv.Itoa(r.Qubits), strconv.Itoa(r.Gates),
			strconv.FormatUint(r.Paths, 10),
			f(r.DenseTime.Seconds()), f(r.DDTime.Seconds()),
			fmt.Sprintf("%.3e", r.MaxDiff),
		})
	}
	return writeCSV(w, header, data)
}

// WriteBackendsCSV emits the backend study.
func WriteBackendsCSV(w io.Writer, rows []*BackendRow) error {
	header := []string{
		"circuit", "qubits", "gates", "array_s", "array_amps",
		"dd_s", "dd_nodes", "mps_s", "mps_max_bond", "max_diff",
	}
	var data [][]string
	for _, r := range rows {
		data = append(data, []string{
			r.Name, strconv.Itoa(r.Qubits), strconv.Itoa(r.Gates),
			f(r.ArrayTime.Seconds()), strconv.Itoa(r.ArrayAmps),
			f(r.DDTime.Seconds()), strconv.Itoa(r.DDNodes),
			f(r.MPSTime.Seconds()), strconv.Itoa(r.MPSMaxBond),
			fmt.Sprintf("%.3e", r.MaxDiff),
		})
	}
	return writeCSV(w, header, data)
}
