package bench

import (
	"fmt"
	"time"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
)

// CascadePoint compares standard and joint cutting of a CNOT cascade of
// length k (paper Fig. 5 / Ex. 4), including the preprocessing cost of the
// numeric versus analytic decomposition (Sec. IV-C/D ablation).
type CascadePoint struct {
	Length        int
	StandardPaths uint64
	JointPaths    uint64
	NumericTime   time.Duration
	AnalyticTime  time.Duration
}

// cascadeCircuit builds k CNOTs sharing the control, which sits just below
// the cut; the targets fan into the upper partition.
func cascadeCircuit(k int) *circuit.Circuit {
	c := circuit.New(k + 1)
	for i := 0; i < k; i++ {
		c.Append(gate.CNOT(0, i+1))
	}
	return c
}

// CascadeSeries measures cascades of length 1..max.
func CascadeSeries(max int) ([]CascadePoint, error) {
	var out []CascadePoint
	for k := 1; k <= max; k++ {
		c := cascadeCircuit(k)
		p := cut.Partition{CutPos: 0}
		std, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyNone})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		num, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyCascade, MaxBlockQubits: k + 1})
		if err != nil {
			return nil, err
		}
		numTime := time.Since(start)
		start = time.Now()
		ana, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyCascade, MaxBlockQubits: k + 1, UseAnalytic: true})
		if err != nil {
			return nil, err
		}
		anaTime := time.Since(start)
		ns, _ := std.NumPaths()
		nn, _ := num.NumPaths()
		na, _ := ana.NumPaths()
		if nn != na {
			return nil, fmt.Errorf("bench: cascade %d: numeric %d vs analytic %d paths", k, nn, na)
		}
		out = append(out, CascadePoint{
			Length:        k,
			StandardPaths: ns,
			JointPaths:    nn,
			NumericTime:   numTime,
			AnalyticTime:  anaTime,
		})
	}
	return out, nil
}

// RenderCascades formats the cascade study.
func RenderCascades(points []CascadePoint) string {
	t := &table{header: []string{"cascade length", "standard n_p", "joint n_p", "numeric prep", "analytic prep"}}
	for _, p := range points {
		t.add(fmt.Sprintf("%d", p.Length),
			fmt.Sprintf("%d", p.StandardPaths),
			fmt.Sprintf("%d", p.JointPaths),
			p.NumericTime.Round(time.Microsecond).String(),
			p.AnalyticTime.Round(time.Microsecond).String())
	}
	return "Ex. 4 / Fig. 5: CNOT cascades — joint rank stays 2 while standard cutting pays 2^k\n" + t.String()
}
