package bench

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestManybodySeries(t *testing.T) {
	points, err := ManybodySeries(8, 4, 256, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		// Exactly one bond crosses the middle cut: standard HSF pays
		// 2^steps paths.
		if math.Abs(p.StandardLog2-float64(i+1)) > 1e-9 {
			t.Errorf("steps=%d: standard log2 = %g, want %d", p.Steps, p.StandardLog2, i+1)
		}
		// The mixer walls pin the recurring bond: joint = standard here
		// (the deep-circuit limitation the paper's conclusion names).
		if p.JointLog2 != p.StandardLog2 {
			t.Errorf("steps=%d: joint %g != standard %g", p.Steps, p.JointLog2, p.StandardLog2)
		}
		if p.HSFTimed {
			t.Errorf("steps=%d unexpectedly timed out", p.Steps)
		}
		if p.SchrodTime <= 0 || p.HSFTime <= 0 {
			t.Errorf("steps=%d: missing timings", p.Steps)
		}
	}
	out := RenderManybody(8, points, 30*time.Second)
	if !strings.Contains(out, "Ising chain") {
		t.Fatal("render missing content")
	}
}
