package bench

import (
	"fmt"
	"time"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/hsf"
	"hsfsim/internal/qaoa"
	"hsfsim/internal/statevec"
)

// WalkerRow compares the HSF execution backends on one cut plan. Unlike the
// backends study (which evolves whole circuits on standalone representations),
// both columns here run the identical path-tree walker — the only variable is
// the pair-state representation behind it, so the ratio isolates
// representation cost from tree-walk cost.
type WalkerRow struct {
	Name      string        `json:"name"`
	Qubits    int           `json:"qubits"`
	Gates     int           `json:"gates"`
	Paths     uint64        `json:"paths"`
	DenseTime time.Duration `json:"dense_ns"`
	DDTime    time.Duration `json:"dd_ns"`
	MaxDiff   float64       `json:"max_diff"`
}

// WalkerCase is one benchmark plan.
type WalkerCase struct {
	Name     string
	Circuit  *circuit.Circuit
	CutPos   int
	Strategy cut.Strategy
}

// DefaultWalkerCases builds the comparison workloads: a QAOA layer under a
// joint cascade cut (the paper's headline case) and a sparse-cut circuit
// where the DD pair states stay compact.
func DefaultWalkerCases() ([]WalkerCase, error) {
	var cases []WalkerCase

	inst, err := qaoa.InstanceSpec{Name: "qaoa", SizeA: 6, SizeB: 6, PIntra: 0.8, PInter: 0.2, Seed: 9}.Generate(qaoa.SingleLayer())
	if err != nil {
		return nil, err
	}
	cases = append(cases, WalkerCase{Name: "qaoa-12-cascade", Circuit: inst.Circuit, CutPos: 5, Strategy: cut.StrategyCascade})
	cases = append(cases, WalkerCase{Name: "qaoa-12-standard", Circuit: inst.Circuit, CutPos: 5, Strategy: cut.StrategyNone})

	return cases, nil
}

// RunWalker measures every case through both execution backends and
// cross-checks the amplitudes; any disagreement beyond 1e-12 indicates a
// backend bug, so it is returned as an error rather than a table entry.
func RunWalker(cases []WalkerCase) ([]*WalkerRow, error) {
	var rows []*WalkerRow
	for _, cs := range cases {
		plan, err := cut.BuildPlan(cs.Circuit, cut.Options{
			Partition: cut.Partition{CutPos: cs.CutPos},
			Strategy:  cs.Strategy,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s plan: %w", cs.Name, err)
		}
		row := &WalkerRow{Name: cs.Name, Qubits: cs.Circuit.NumQubits, Gates: len(cs.Circuit.Gates)}

		start := time.Now()
		dense, err := hsf.Run(plan, hsf.Options{Backend: hsf.BackendDense})
		if err != nil {
			return nil, fmt.Errorf("bench: %s dense: %w", cs.Name, err)
		}
		row.DenseTime = time.Since(start)
		row.Paths = dense.NumPaths

		start = time.Now()
		dd, err := hsf.Run(plan, hsf.Options{Backend: hsf.BackendDD})
		if err != nil {
			return nil, fmt.Errorf("bench: %s dd: %w", cs.Name, err)
		}
		row.DDTime = time.Since(start)

		row.MaxDiff = statevec.MaxAbsDiff(dense.Amplitudes, dd.Amplitudes)
		if row.MaxDiff > 1e-12 {
			return nil, fmt.Errorf("bench: %s backends diverge: max diff %g", cs.Name, row.MaxDiff)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderWalker formats the comparison.
func RenderWalker(rows []*WalkerRow) string {
	t := &table{header: []string{
		"plan", "qubits", "gates", "paths", "dense walk", "DD walk", "max diff",
	}}
	for _, r := range rows {
		t.add(r.Name,
			fmt.Sprintf("%d", r.Qubits),
			fmt.Sprintf("%d", r.Gates),
			fmt.Sprintf("%d", r.Paths),
			r.DenseTime.Round(time.Microsecond).String(),
			r.DDTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1e", r.MaxDiff))
	}
	return "Walker study: dense vs. DD pair states through the shared path-tree walker\n" + t.String()
}
