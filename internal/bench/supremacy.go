package bench

import (
	"errors"
	"fmt"
	"time"

	"hsfsim"
	"hsfsim/internal/cut"
	"hsfsim/internal/grcs"
)

// SupremacyCase is one grid-circuit configuration of the Sec. V extension
// experiment: shallow supremacy-style circuits with the cut through the
// middle of a row, where vertical and horizontal crossing entanglers share
// boundary qubits and can be jointly cut.
type SupremacyCase struct {
	Name      string
	Opts      grcs.Options
	CutPos    int
	MaxBlockQ int
}

// DefaultSupremacyCases returns the measured configurations. iSWAP
// entanglers (Schmidt rank 4) profit most from anchored blocks; CZ circuits
// are included to show the benefit filter falling back to standard cuts when
// grouping would not pay off.
func DefaultSupremacyCases() []SupremacyCase {
	return []SupremacyCase{
		{Name: "cz-4x4-d6", Opts: grcs.Options{Rows: 4, Cols: 4, Depth: 6, Entangler: grcs.CZ, Seed: 7}, CutPos: 9, MaxBlockQ: 5},
		{Name: "iswap-4x4-d6", Opts: grcs.Options{Rows: 4, Cols: 4, Depth: 6, Entangler: grcs.ISwap, Seed: 7}, CutPos: 9, MaxBlockQ: 5},
		{Name: "iswap-4x4-d8", Opts: grcs.Options{Rows: 4, Cols: 4, Depth: 8, Entangler: grcs.ISwap, Seed: 7}, CutPos: 9, MaxBlockQ: 6},
		{Name: "iswap-4x5-d6", Opts: grcs.Options{Rows: 4, Cols: 5, Depth: 6, Entangler: grcs.ISwap, Seed: 11}, CutPos: 11, MaxBlockQ: 5},
		{Name: "iswap-syc-4x4-d6", Opts: grcs.Options{Rows: 4, Cols: 4, Depth: 6, Entangler: grcs.ISwap, Seed: 7, Sycamore: true}, CutPos: 9, MaxBlockQ: 5},
	}
}

// SupremacyRow is one measured configuration.
type SupremacyRow struct {
	Name          string
	Qubits        int
	StandardLog2  float64
	JointLog2     float64
	Blocks        int
	StandardTime  time.Duration
	JointTime     time.Duration
	StandardTimed bool
	JointTimed    bool
}

// RunSupremacy measures the cases: path counts always, runtimes where the
// standard path count is feasible under the timeout.
func RunSupremacy(cases []SupremacyCase, maxAmplitudes int, timeout time.Duration) ([]*SupremacyRow, error) {
	var rows []*SupremacyRow
	for _, cs := range cases {
		c, err := grcs.Generate(cs.Opts)
		if err != nil {
			return nil, err
		}
		p := cut.Partition{CutPos: cs.CutPos}
		std, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyNone})
		if err != nil {
			return nil, err
		}
		jnt, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyWindow, MaxBlockQubits: cs.MaxBlockQ})
		if err != nil {
			return nil, err
		}
		row := &SupremacyRow{
			Name:         cs.Name,
			Qubits:       c.NumQubits,
			StandardLog2: std.Log2Paths(),
			JointLog2:    jnt.Log2Paths(),
			Blocks:       jnt.NumBlocks(),
		}
		stdRes, err := hsfsim.Simulate(c, hsfsim.Options{
			Method: hsfsim.StandardHSF, CutPos: cs.CutPos,
			MaxAmplitudes: maxAmplitudes, Timeout: timeout,
		})
		switch {
		case err == nil:
			row.StandardTime = stdRes.TotalTime()
		case errors.Is(err, hsfsim.ErrTimeout):
			row.StandardTimed = true
		default:
			return nil, fmt.Errorf("bench: %s standard: %w", cs.Name, err)
		}
		jntRes, err := hsfsim.Simulate(c, hsfsim.Options{
			Method: hsfsim.JointHSF, CutPos: cs.CutPos, BlockStrategy: hsfsim.BlockWindow,
			MaxBlockQubits: cs.MaxBlockQ, MaxAmplitudes: maxAmplitudes, Timeout: timeout,
		})
		switch {
		case err == nil:
			row.JointTime = jntRes.TotalTime()
		case errors.Is(err, hsfsim.ErrTimeout):
			row.JointTimed = true
		default:
			return nil, fmt.Errorf("bench: %s joint: %w", cs.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSupremacy formats the extension experiment.
func RenderSupremacy(rows []*SupremacyRow, timeout time.Duration) string {
	t := &table{header: []string{"circuit", "qubits", "std paths", "joint paths", "blocks", "std time", "joint time"}}
	for _, r := range rows {
		st := r.StandardTime.Round(time.Millisecond).String()
		if r.StandardTimed {
			st = fmt.Sprintf("timed out (%s)", timeout)
		}
		jt := r.JointTime.Round(time.Millisecond).String()
		if r.JointTimed {
			jt = fmt.Sprintf("timed out (%s)", timeout)
		}
		t.add(r.Name,
			fmt.Sprintf("%d", r.Qubits),
			fmtPaths(r.StandardLog2),
			fmtPaths(r.JointLog2),
			fmt.Sprintf("%d", r.Blocks),
			st,
			jt)
	}
	return "Sec. V extension: joint cutting of supremacy-style grid circuits (mid-row cut)\n" + t.String()
}
