package dist

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/cmplx"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hsfsim/internal/hsf"
	"hsfsim/internal/qasm"
)

// testQASM builds a QAOA-style circuit with crossing RZZ entanglers: joint
// cutting groups them into blocks, so the job exercises real joint-cut path
// spaces.
func testQASM(n, edges int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	fmt.Fprintf(&b, "qreg q[%d];\n", n)
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "h q[%d];\n", q)
	}
	for i := 0; i < edges; i++ {
		a := rng.Intn(n)
		c := (a + 1 + rng.Intn(n-1)) % n
		fmt.Fprintf(&b, "rzz(%.6f) q[%d],q[%d];\n", rng.Float64()*2, a, c)
	}
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "rx(%.6f) q[%d];\n", rng.Float64(), q)
	}
	return b.String()
}

// singleProcess runs the job locally through the ordinary engine.
func singleProcess(t *testing.T, job *Job) []complex128 {
	t.Helper()
	plan, err := job.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hsf.Run(plan, hsf.Options{MaxAmplitudes: job.MaxAmplitudes})
	if err != nil {
		t.Fatal(err)
	}
	return res.Amplitudes
}

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// mustNew builds a coordinator from cfg, failing the test on config errors.
func mustNew(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	co, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return co
}

func testJob(seed int64) *Job {
	return &Job{QASM: testQASM(8, 10, seed), Method: "joint", CutPos: 3}
}

func assertAmplitudesMatch(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("amplitude count %d != %d", len(got), len(want))
	}
	for i := range want {
		if d := cmplx.Abs(got[i] - want[i]); d > tol {
			t.Fatalf("amplitude %d differs by %g (> %g)", i, d, tol)
		}
	}
}

func TestLoopbackDistributedMatchesSingleProcess(t *testing.T) {
	job := testJob(3)
	lb := NewLoopback()
	for _, w := range []string{"w0", "w1", "w2"} {
		lb.AddWorker(w, ExecOptions{})
	}
	co := mustNew(t, Config{Transport: lb, Logger: quietLogger()})
	co.AddWorker("w0")
	co.AddWorker("w1")
	co.AddWorker("w2")
	res, err := co.Run(context.Background(), job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 3 {
		t.Fatalf("res.Workers = %d, want 3", res.Workers)
	}
	if res.Batches < 2 {
		t.Fatalf("want ≥ 2 batches, got %d", res.Batches)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)
}

// TestWorkerKilledMidRunReassigns is the loopback half of the acceptance
// criterion: one of two workers dies after its first lease; its remaining
// batches must be reassigned and the amplitudes still match single-process.
func TestWorkerKilledMidRunReassigns(t *testing.T) {
	job := testJob(4)
	lb := NewLoopback()
	lb.AddWorker("alive", ExecOptions{})
	lb.AddWorker("doomed", ExecOptions{})
	// Pace the survivor: the pool is greedy, so an unthrottled in-process
	// worker would drain it before "doomed" ever holds the lease we kill.
	lb.Delay("alive", 2*time.Millisecond)

	var stats Stats
	var doomedLeases atomic.Int64
	cfg := Config{
		Transport: lb,
		Logger:    quietLogger(),
		Stats:     &stats,
		BatchSize: 1, // many small batches → the kill lands mid-run
		onLease: func(worker string, batch int) {
			if worker == "doomed" && doomedLeases.Add(1) == 2 {
				lb.Kill("doomed")
			}
		},
	}
	co := mustNew(t, cfg)
	co.AddWorker("alive")
	co.AddWorker("doomed")
	res, err := co.Run(context.Background(), job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reassignments == 0 {
		t.Fatal("expected at least one lease reassignment")
	}
	if stats.WorkersRetired.Load() == 0 {
		t.Fatal("expected the killed worker to be retired")
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)
}

// TestStalledWorkerLeaseExpires covers the other failure mode: a worker that
// hangs. Its lease must expire and the batch complete elsewhere.
func TestStalledWorkerLeaseExpires(t *testing.T) {
	job := testJob(5)
	lb := NewLoopback()
	lb.AddWorker("alive", ExecOptions{})
	lb.AddWorker("stuck", ExecOptions{})
	lb.Stall("stuck")
	// Pace the survivor so "stuck" takes a lease before the pool drains.
	lb.Delay("alive", 2*time.Millisecond)

	co := mustNew(t, Config{
		Transport:    lb,
		Logger:       quietLogger(),
		LeaseTimeout: 100 * time.Millisecond,
		BatchSize:    2,
	})
	co.AddWorker("alive")
	co.AddWorker("stuck")
	res, err := co.Run(context.Background(), job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reassignments == 0 {
		t.Fatal("expected the stalled worker's leases to be reassigned")
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)
}

func TestAllWorkersDeadFailsWithCheckpoint(t *testing.T) {
	job := testJob(6)
	lb := NewLoopback()
	lb.AddWorker("w0", ExecOptions{})
	var killOnce atomic.Bool
	co := mustNew(t, Config{
		Transport: lb,
		Logger:    quietLogger(),
		BatchSize: 1,
		onLease: func(worker string, batch int) {
			// Let the first lease succeed so the checkpoint is non-empty,
			// then kill the only worker.
			if killOnce.Swap(true) {
				lb.Kill("w0")
			}
		},
	})
	co.AddWorker("w0")
	var ckBuf bytes.Buffer
	_, err := co.Run(context.Background(), job, RunOptions{CheckpointWriter: &ckBuf})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("got %v, want ErrNoWorkers", err)
	}
	ck, err := hsf.ReadCheckpoint(&ckBuf)
	if err != nil {
		t.Fatalf("failure checkpoint unreadable: %v", err)
	}
	if len(ck.Prefixes) == 0 {
		t.Fatal("failure checkpoint is empty; first lease should have merged")
	}

	// Resume on a healthy fleet completes the job from the snapshot.
	lb2 := NewLoopback()
	lb2.AddWorker("w1", ExecOptions{})
	co2 := mustNew(t, Config{Transport: lb2, Logger: quietLogger()})
	co2.AddWorker("w1")
	res, err := co2.Run(context.Background(), job, RunOptions{Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)
}

func TestRunWithoutWorkers(t *testing.T) {
	co := mustNew(t, Config{Transport: NewLoopback(), Logger: quietLogger()})
	if _, err := co.Run(context.Background(), testJob(1), RunOptions{}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("got %v, want ErrNoWorkers", err)
	}
}

func TestPermanentErrorFailsFast(t *testing.T) {
	job := testJob(7)
	lb := NewLoopback()
	lb.AddWorker("w0", ExecOptions{MaxPaths: 1}) // admission rejects every lease
	co := mustNew(t, Config{Transport: lb, Logger: quietLogger()})
	co.AddWorker("w0")
	_, err := co.Run(context.Background(), job, RunOptions{})
	if err == nil || !IsPermanent(err) {
		t.Fatalf("got %v, want a permanent error", err)
	}
	if !errors.Is(err, hsf.ErrBudget) {
		t.Fatalf("got %v, want hsf.ErrBudget underneath", err)
	}
}

func TestExecuteRunRejectsPlanMismatch(t *testing.T) {
	job := testJob(8)
	plan, err := job.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	req := &RunRequest{
		Job:         *job,
		PlanHash:    hsf.PlanHash(plan) + 1,
		SplitLevels: 0,
		Prefixes:    [][]int{{}},
	}
	_, err = ExecuteRun(context.Background(), req, ExecOptions{})
	if !errors.Is(err, ErrPlanMismatch) || !IsPermanent(err) {
		t.Fatalf("got %v, want permanent ErrPlanMismatch", err)
	}
}

func TestRegistryTTLExpiry(t *testing.T) {
	r := newRegistry(time.Minute)
	now := time.Unix(1000, 0)
	r.now = func() time.Time { return now }
	r.addStatic("static:1")
	r.register("dyn:1")
	if got := r.workers(); len(got) != 2 {
		t.Fatalf("workers = %v, want 2 entries", got)
	}
	now = now.Add(2 * time.Minute)
	if got := r.workers(); len(got) != 1 || got[0] != "static:1" {
		t.Fatalf("workers after TTL = %v, want only static:1", got)
	}
	// A fresh heartbeat brings the dynamic worker back.
	r.register("dyn:1")
	if got := r.workers(); len(got) != 2 {
		t.Fatalf("workers after re-register = %v, want 2 entries", got)
	}
}

func TestJobBuildPlanValidates(t *testing.T) {
	if _, err := (&Job{QASM: "qreg q[4]; h q[0];", Method: "nope", CutPos: 1}).BuildPlan(); err == nil {
		t.Fatal("accepted unknown method")
	}
	if _, err := (&Job{QASM: "qreg q[4]; h q[0];", Method: "joint", Strategy: "nope", CutPos: 1}).BuildPlan(); err == nil {
		t.Fatal("accepted unknown strategy")
	}
	if _, err := (&Job{QASM: "not qasm", Method: "joint", CutPos: 1}).BuildPlan(); err == nil {
		t.Fatal("accepted unparsable qasm")
	}
	c, err := qasm.Parse(strings.NewReader(testQASM(6, 6, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 6 {
		t.Fatalf("test circuit has %d qubits, want 6", c.NumQubits)
	}
}
