// Coordinator configuration and validation. The zero Config (plus a
// Transport) is usable; every knob has a production default. Validation
// failures are typed (*ConfigError) so daemons can reject bad flag
// combinations at startup with a precise message instead of misbehaving
// mid-run.
package dist

import (
	"fmt"
	"log"
	"time"

	"hsfsim/internal/telemetry"
)

// Config tunes a Coordinator; the zero value (plus a Transport) is usable.
type Config struct {
	// Transport executes leases (required).
	Transport Transport
	// LeaseTimeout bounds one lease: it is the worker-side execution deadline
	// sent with every lease, and the coordinator waits a small grace period
	// beyond it for the reply (so a worker that partials exactly at the
	// deadline still gets its work merged). 0: 2 minutes.
	LeaseTimeout time.Duration
	// MaxStrikes is the number of consecutive failed leases after which a
	// worker is retired from the run. 0: 3.
	MaxStrikes int
	// TasksPerWorker sizes the split: the prefix space is expanded until it
	// has at least TasksPerWorker×workers tasks. 0: 16.
	TasksPerWorker int
	// BatchSize fixes the lease size in prefixes. 0: adaptive — leases start
	// at about pending/(4×workers) prefixes and are then resized per worker
	// from its lease-duration histogram so each lease lands near
	// TargetLeaseDuration (slow workers get smaller leases, fast ones larger).
	BatchSize int
	// WorkerTTL is the dynamic-registration heartbeat TTL. 0: 1 minute.
	WorkerTTL time.Duration
	// HeartbeatInterval is the re-registration cadence advertised to workers.
	// It must be shorter than WorkerTTL or live workers would flap out of the
	// registry between beats. 0: WorkerTTL/3.
	HeartbeatInterval time.Duration
	// MembershipInterval is how often a running session re-reads the registry
	// to admit joiners and mark leavers. 0: 250ms.
	MembershipInterval time.Duration
	// StealDelay is how long an in-flight lease must age before an idle
	// worker may steal (re-split) part of it. Leases held by leaving or
	// retired workers are stealable immediately. 0: max(LeaseTimeout/8, 2s).
	StealDelay time.Duration
	// TargetLeaseDuration is the per-lease wall-time the adaptive sizer aims
	// for. Must be below LeaseTimeout. 0: LeaseTimeout/4.
	TargetLeaseDuration time.Duration
	// JoinGrace is how long a run with unfinished work waits for a new worker
	// to join after the whole fleet has died or left. 0: fail immediately
	// with ErrNoWorkers (the pre-elastic behavior).
	JoinGrace time.Duration
	// Logger receives lease-level events (nil: log.Default()).
	Logger *log.Logger
	// Stats, when non-nil, receives counter updates. Every coordinator
	// should get its own Stats instance (a daemon scopes one per service and
	// aggregates for export); New allocates a private one when nil, so
	// coordinators never share counters by accident.
	Stats *Stats
	// OnLease, when non-nil, receives one event per completed (or failed)
	// lease: worker, batch, duration, merged path count. It is called from
	// worker lease loops, so it must be safe for concurrent use.
	OnLease func(telemetry.LeaseEvent)

	// onLease, when non-nil, runs just before each lease is dispatched
	// (worker address, lease id). Tests use it to kill workers mid-run.
	onLease func(worker string, batch int)
}

// ConfigError reports a rejected Config field.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("dist: invalid config: %s: %s", e.Field, e.Reason)
}

// Validate checks the configuration as New would see it (defaults applied to
// unset fields first) and returns a *ConfigError describing the first
// problem, or nil.
func (cfg Config) Validate() error {
	for _, f := range []struct {
		name string
		d    time.Duration
	}{
		{"LeaseTimeout", cfg.LeaseTimeout},
		{"WorkerTTL", cfg.WorkerTTL},
		{"HeartbeatInterval", cfg.HeartbeatInterval},
		{"MembershipInterval", cfg.MembershipInterval},
		{"StealDelay", cfg.StealDelay},
		{"TargetLeaseDuration", cfg.TargetLeaseDuration},
		{"JoinGrace", cfg.JoinGrace},
	} {
		if f.d < 0 {
			return &ConfigError{Field: f.name, Reason: "must not be negative"}
		}
	}
	if cfg.MaxStrikes < 0 {
		return &ConfigError{Field: "MaxStrikes", Reason: "must not be negative"}
	}
	if cfg.TasksPerWorker < 0 {
		return &ConfigError{Field: "TasksPerWorker", Reason: "must not be negative"}
	}
	if cfg.BatchSize < 0 {
		return &ConfigError{Field: "BatchSize", Reason: "must not be negative"}
	}
	n := cfg.withDefaults()
	if n.WorkerTTL <= n.HeartbeatInterval {
		return &ConfigError{
			Field: "WorkerTTL",
			Reason: fmt.Sprintf("TTL %v must exceed the heartbeat interval %v or live workers expire between beats",
				n.WorkerTTL, n.HeartbeatInterval),
		}
	}
	if n.TargetLeaseDuration >= n.LeaseTimeout {
		return &ConfigError{
			Field: "TargetLeaseDuration",
			Reason: fmt.Sprintf("target %v must stay below the lease timeout %v or every lease expires",
				n.TargetLeaseDuration, n.LeaseTimeout),
		}
	}
	return nil
}

// withDefaults returns a copy with every unset knob replaced by its default.
func (cfg Config) withDefaults() Config {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.MaxStrikes <= 0 {
		cfg.MaxStrikes = 3
	}
	if cfg.TasksPerWorker <= 0 {
		cfg.TasksPerWorker = 16
	}
	if cfg.WorkerTTL <= 0 {
		cfg.WorkerTTL = time.Minute
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = cfg.WorkerTTL / 3
	}
	if cfg.MembershipInterval <= 0 {
		cfg.MembershipInterval = 250 * time.Millisecond
	}
	if cfg.StealDelay <= 0 {
		cfg.StealDelay = cfg.LeaseTimeout / 8
		if cfg.StealDelay < 2*time.Second {
			cfg.StealDelay = 2 * time.Second
		}
	}
	if cfg.TargetLeaseDuration <= 0 {
		cfg.TargetLeaseDuration = cfg.LeaseTimeout / 4
	}
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	if cfg.Stats == nil {
		cfg.Stats = &Stats{}
	}
	return cfg
}

// leaseGrace is how long past the worker-side deadline the coordinator keeps
// the lease's reply channel open, so partials produced exactly at the
// deadline still arrive.
func leaseGrace(leaseTimeout time.Duration) time.Duration {
	g := leaseTimeout / 4
	if g < 100*time.Millisecond {
		g = 100 * time.Millisecond
	}
	if g > 5*time.Second {
		g = 5 * time.Second
	}
	return g
}
