// Distributed tracing support: lease execution metadata (the worker-side
// execution window, reported back through the transport), NTP-style worker
// clock-offset estimation from lease round-trips, and assembly of the
// merged fleet timeline written next to the run's checkpoints.
package dist

import (
	"bytes"
	"context"
	"time"

	"hsfsim/internal/telemetry/trace"
)

// Worker-execution-window headers: the /dist/run handler stamps its local
// wall clock around ExecuteRun, the HTTPTransport carries them back, and
// the coordinator turns them into offset-corrected worker-exec spans.
// Exported so the HTTP server sets them without reaching into dist internals.
const (
	WorkerStartHeader = "X-Hsfsim-Worker-Start-Ns"
	WorkerEndHeader   = "X-Hsfsim-Worker-End-Ns"
)

// leaseMeta rides a lease's context from the coordinator through the
// transport: whichever side actually executes the lease fills in the
// worker's wall-clock execution window. Loopback execution writes it
// directly (one process, one clock); the HTTP transport fills it from the
// reply headers. Written before the transport call returns and read only
// after, so plain fields suffice.
type leaseMeta struct {
	workerStartNS int64
	workerEndNS   int64
}

type leaseMetaKey struct{}

// withLeaseMeta attaches the metadata carrier to a lease context.
func withLeaseMeta(ctx context.Context, m *leaseMeta) context.Context {
	return context.WithValue(ctx, leaseMetaKey{}, m)
}

// leaseMetaFrom returns the lease's metadata carrier, or nil.
func leaseMetaFrom(ctx context.Context) *leaseMeta {
	m, _ := ctx.Value(leaseMetaKey{}).(*leaseMeta)
	return m
}

// TimelineStore is the optional Store extension that persists the merged
// fleet timeline (Chrome trace-event JSON) next to a run's checkpoints.
// It is a separate interface so existing Store implementations keep
// compiling; DirStore implements it.
type TimelineStore interface {
	// SaveTimeline durably replaces the run's fleet timeline.
	SaveTimeline(runID string, data []byte) error
	// LoadTimeline returns the run's fleet timeline or ErrNoRun.
	LoadTimeline(runID string) ([]byte, error)
}

// observeClock folds one lease round-trip into the worker's clock-offset
// estimate. The NTP-style estimate from a single round trip is
//
//	offset = ((workerStart − sent) + (workerEnd − received)) / 2
//
// with error bounded by half the non-execution round-trip time, so the
// sample from the lease with the smallest transport overhead wins.
// Returns the worker's current best offset (worker clock − coordinator
// clock). Caller holds s.mu.
func (w *sessWorker) observeClock(sent, received time.Time, m *leaseMeta) int64 {
	if m == nil || m.workerStartNS == 0 || m.workerEndNS == 0 {
		return w.clockOffNS
	}
	exec := m.workerEndNS - m.workerStartNS
	overhead := received.Sub(sent).Nanoseconds() - exec
	if overhead < 0 {
		overhead = 0
	}
	if !w.clockSet || overhead < w.clockRTTNS {
		w.clockRTTNS = overhead
		w.clockOffNS = ((m.workerStartNS - sent.UnixNano()) + (m.workerEndNS - received.UnixNano())) / 2
		w.clockSet = true
	}
	return w.clockOffNS
}

// recordWorkerExec synthesizes the worker-side execution span on the
// coordinator's timeline, shifted onto the coordinator's clock by the
// worker's estimated offset and parented to the lease span.
func (s *session) recordWorkerExec(w *sessWorker, l *lease, m *leaseMeta, offNS int64) {
	if s.trc == nil || m == nil || m.workerStartNS == 0 || m.workerEndNS == 0 {
		return
	}
	start := time.Unix(0, m.workerStartNS-offNS)
	end := start.Add(time.Duration(m.workerEndNS - m.workerStartNS))
	sp := s.trc.StartAt(l.sc, "worker-exec", start)
	sp.SetStr("worker", w.addr)
	sp.SetInt("offset_ns", offNS)
	sp.SetLane(w.lane)
	sp.EndAt(end)
}

// saveTimeline assembles the run's merged fleet timeline from the flight
// recorder — coordinator spans plus offset-corrected worker execution
// windows, one timeline lane per worker — and persists it when the store
// supports timelines. Failures are logged, never fatal.
func (s *session) saveTimeline(store Store, runID string) {
	ts, ok := store.(TimelineStore)
	if !ok || s.trc == nil || !s.root.Valid() {
		return
	}
	events := s.trc.SnapshotTrace(s.root.Trace)
	if len(events) == 0 {
		return
	}
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, events); err != nil {
		s.co.cfg.Logger.Printf("dist: encoding timeline for run %s: %v", runID, err)
		return
	}
	if err := ts.SaveTimeline(runID, buf.Bytes()); err != nil {
		s.co.cfg.Logger.Printf("dist: saving timeline for run %s: %v", runID, err)
	}
}
