package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"hsfsim/internal/hsf"
)

// Transport executes one lease on a worker. Implementations must be safe for
// concurrent use: the coordinator runs one in-flight lease per worker, across
// many workers.
type Transport interface {
	// Run executes req on the worker at addr and returns its partial. A
	// *PermanentError return aborts the whole run; any other error counts as
	// a transient worker failure and triggers reassignment.
	Run(ctx context.Context, addr string, req *RunRequest) (*hsf.Checkpoint, error)
}

// PermanentError marks a lease failure that reassignment cannot fix — a
// malformed job, a plan-fingerprint mismatch, or an admission rejection that
// every worker would repeat. The coordinator fails the run instead of
// retrying forever.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err as a PermanentError (nil stays nil).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// IsPermanent reports whether err is marked permanent.
func IsPermanent(err error) bool {
	var pe *PermanentError
	return errors.As(err, &pe)
}

// HTTPTransport drives hsfsimd workers over POST /dist/run. The zero value
// is usable; Client defaults to http.DefaultClient (lease deadlines ride on
// the request context, so no client timeout is needed).
type HTTPTransport struct {
	Client *http.Client
}

// httpPermanentStatus reports whether an HTTP status indicates a failure
// that every worker would repeat (client errors: bad job, plan mismatch,
// over-budget lease) rather than a worker-local fault.
func httpPermanentStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusRequestTimeout:
		return false // saturation and deadline: another worker (or retry) may succeed
	}
	return code >= 400 && code < 500
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// Run POSTs the lease as JSON and decodes the binary checkpoint reply.
func (t *HTTPTransport) Run(ctx context.Context, addr string, req *RunRequest) (*hsf.Checkpoint, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, Permanent(fmt.Errorf("dist: encoding lease: %w", err))
	}
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/dist/run"
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, Permanent(fmt.Errorf("dist: building lease request: %w", err))
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: %w", addr, err) // transient: connection refused, reset, deadline
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("dist: worker %s: status %d: %s", addr, resp.StatusCode, bytes.TrimSpace(msg))
		if httpPermanentStatus(resp.StatusCode) {
			return nil, Permanent(err)
		}
		return nil, err
	}
	ck, err := hsf.ReadCheckpoint(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("dist: worker %s: decoding partial: %w", addr, err)
	}
	return ck, nil
}
