package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"hsfsim/internal/hsf"
	"hsfsim/internal/telemetry/trace"
)

// Transport executes one lease on a worker. Implementations must be safe for
// concurrent use: the coordinator runs one in-flight lease per worker, across
// many workers.
type Transport interface {
	// Run executes req on the worker at addr and returns its partial. A
	// *PermanentError return aborts the whole run; any other error counts as
	// a transient worker failure and triggers reassignment.
	Run(ctx context.Context, addr string, req *RunRequest) (*hsf.Checkpoint, error)
}

// PermanentError marks a lease failure that reassignment cannot fix — a
// malformed job, a plan-fingerprint mismatch, or an admission rejection that
// every worker would repeat. The coordinator fails the run instead of
// retrying forever.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err as a PermanentError (nil stays nil).
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &PermanentError{Err: err}
}

// IsPermanent reports whether err is marked permanent.
func IsPermanent(err error) bool {
	var pe *PermanentError
	return errors.As(err, &pe)
}

// HTTPTransport drives hsfsimd workers over POST /dist/run. The zero value
// is usable; Client defaults to http.DefaultClient (lease deadlines ride on
// the request context, so no client timeout is needed).
//
// Transient failures — connection refused/reset, 5xx, 429, 408, a
// per-attempt timeout — are retried in place with exponential backoff and
// jitter before the lease is reported failed, so a worker restarting or a
// brief network blip does not burn a coordinator strike. Permanent 4xx
// replies and lease-deadline expiry are never retried.
type HTTPTransport struct {
	Client *http.Client
	// MaxAttempts bounds tries per lease (first attempt included). 0: 3.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt with ±50% jitter. 0: 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the (pre-jitter) backoff. 0: 2s.
	MaxBackoff time.Duration
	// AttemptTimeout bounds a single HTTP attempt, distinct from the lease
	// deadline carried by ctx: an attempt that times out is retried while
	// the lease is still live. 0: attempts are bounded by ctx alone.
	AttemptTimeout time.Duration

	// randFloat provides jitter; tests may pin it. nil: math/rand.Float64.
	randFloat func() float64
}

// httpPermanentStatus reports whether an HTTP status indicates a failure
// that every worker would repeat (client errors: bad job, plan mismatch,
// over-budget lease) rather than a worker-local fault.
func httpPermanentStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusRequestTimeout:
		return false // saturation and deadline: another worker (or retry) may succeed
	}
	return code >= 400 && code < 500
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) attempts() int {
	if t.MaxAttempts > 0 {
		return t.MaxAttempts
	}
	return 3
}

// backoff returns the jittered delay before retry i (1-based).
func (t *HTTPTransport) backoff(i int) time.Duration {
	base := t.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := t.MaxBackoff
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << (i - 1)
	if d > max || d <= 0 {
		d = max
	}
	rf := t.randFloat
	if rf == nil {
		rf = rand.Float64
	}
	return d/2 + time.Duration(rf()*float64(d))
}

// retryAfter extracts a worker-suggested delay from a 429/503 reply, capped
// so a confused worker cannot stall the lease.
func retryAfter(resp *http.Response, limit time.Duration) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0, false
	}
	d := time.Duration(secs) * time.Second
	if d > limit {
		d = limit
	}
	return d, true
}

// Run POSTs the lease as JSON and decodes the binary checkpoint reply,
// retrying transient failures with backoff while the lease is live.
func (t *HTTPTransport) Run(ctx context.Context, addr string, req *RunRequest) (*hsf.Checkpoint, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, Permanent(fmt.Errorf("dist: encoding lease: %w", err))
	}
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/dist/run"

	attempts := t.attempts()
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			delay := t.backoff(i)
			if d, ok := lastRetryAfter(lastErr); ok && d > delay {
				delay = d
			}
			select {
			case <-ctx.Done():
				return nil, fmt.Errorf("dist: worker %s: %w", addr, context.Cause(ctx))
			case <-time.After(delay):
			}
		}
		ck, err, retryable := t.attempt(ctx, addr, url, body)
		if err == nil {
			return ck, nil
		}
		if !retryable || ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("dist: worker %s: giving up after %d attempts: %w", addr, attempts, lastErr)
}

// retryAfterError carries a worker-suggested retry delay with the failure.
type retryAfterError struct {
	err   error
	delay time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

func lastRetryAfter(err error) (time.Duration, bool) {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.delay, true
	}
	return 0, false
}

// attempt performs one HTTP exchange. The third return reports whether the
// failure is worth retrying on this same worker.
func (t *HTTPTransport) attempt(ctx context.Context, addr, url string, body []byte) (*hsf.Checkpoint, error, bool) {
	actx := ctx
	if t.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, t.AttemptTimeout)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, Permanent(fmt.Errorf("dist: building lease request: %w", err)), false
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Correlation headers are set here, per attempt, so a retried lease
	// carries the same trace context as the original try.
	if rec, sc := trace.FromContext(ctx); rec != nil && sc.Valid() {
		hreq.Header.Set(trace.Header, trace.FormatTraceparent(sc))
	}
	if rid := trace.RequestID(ctx); rid != "" {
		hreq.Header.Set("X-Request-Id", rid)
	}
	resp, err := t.client().Do(hreq)
	if err != nil {
		// Connection refused, reset, attempt timeout: retryable unless the
		// lease itself is over.
		return nil, fmt.Errorf("dist: worker %s: %w", addr, err), ctx.Err() == nil
	}
	defer resp.Body.Close()
	// The worker's execution-window headers feed the coordinator's
	// clock-offset estimate; absent or malformed values simply leave the
	// lease without a worker-exec span.
	if m := leaseMetaFrom(ctx); m != nil {
		if v, err := strconv.ParseInt(resp.Header.Get(WorkerStartHeader), 10, 64); err == nil {
			m.workerStartNS = v
		}
		if v, err := strconv.ParseInt(resp.Header.Get(WorkerEndHeader), 10, 64); err == nil {
			m.workerEndNS = v
		}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := error(fmt.Errorf("dist: worker %s: status %d: %s", addr, resp.StatusCode, bytes.TrimSpace(msg)))
		if httpPermanentStatus(resp.StatusCode) {
			return nil, Permanent(err), false
		}
		if d, ok := retryAfter(resp, 5*time.Second); ok {
			err = &retryAfterError{err: err, delay: d}
		}
		return nil, err, true
	}
	ck, err := hsf.ReadCheckpoint(resp.Body)
	if err != nil {
		// A torn reply is network-shaped; the worker can be asked again.
		return nil, fmt.Errorf("dist: worker %s: decoding partial: %w", addr, err), true
	}
	return ck, nil, false
}
