// Tests for the HTTP transport's retry behavior: transient failures are
// retried in place with backoff (so a restarting worker or a network blip
// does not burn a coordinator strike), permanent replies and dead lease
// contexts are not.
package dist

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hsfsim/internal/hsf"
)

// fastRetry returns a transport with near-zero, jitter-free backoff.
func fastRetry(attempts int) *HTTPTransport {
	return &HTTPTransport{
		MaxAttempts: attempts,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		randFloat:   func() float64 { return 0 },
	}
}

func serveCheckpoint(t *testing.T, w http.ResponseWriter) {
	t.Helper()
	if err := hsf.WriteCheckpoint(w, testCheckpoint(1)); err != nil {
		t.Errorf("writing reply: %v", err)
	}
}

func TestHTTPTransportRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "restarting", http.StatusServiceUnavailable)
			return
		}
		serveCheckpoint(t, w)
	}))
	defer srv.Close()

	ck, err := fastRetry(3).Run(context.Background(), srv.URL, &RunRequest{})
	if err != nil {
		t.Fatalf("Run after two 503s: %v", err)
	}
	if ck.PathsSimulated != 1 {
		t.Fatalf("decoded PathsSimulated=%d, want 1", ck.PathsSimulated)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestHTTPTransportGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	_, err := fastRetry(3).Run(context.Background(), srv.URL, &RunRequest{})
	if err == nil {
		t.Fatal("Run succeeded against an always-503 worker")
	}
	if IsPermanent(err) {
		t.Fatalf("transient exhaustion classified permanent: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestHTTPTransportPermanent4xxNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "plan mismatch", http.StatusConflict)
	}))
	defer srv.Close()

	_, err := fastRetry(3).Run(context.Background(), srv.URL, &RunRequest{})
	if err == nil || !IsPermanent(err) {
		t.Fatalf("Run = %v, want a permanent error", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (permanent errors must not be retried)", got)
	}
}

// TestHTTPTransportAttemptTimeoutRetries: a hung attempt is cut off by
// AttemptTimeout and retried while the lease itself is still live.
func TestHTTPTransportAttemptTimeoutRetries(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first attempt hangs past the attempt timeout
			return
		}
		serveCheckpoint(t, w)
	}))
	defer srv.Close()
	defer close(release) // LIFO: unblock the parked handler before Close waits on it

	tr := fastRetry(2)
	tr.AttemptTimeout = 50 * time.Millisecond
	ck, err := tr.Run(context.Background(), srv.URL, &RunRequest{})
	if err != nil {
		t.Fatalf("Run after one hung attempt: %v", err)
	}
	if ck == nil || calls.Load() != 2 {
		t.Fatalf("ck=%v calls=%d, want a checkpoint on attempt 2", ck, calls.Load())
	}
}

// TestHTTPTransportDeadLeaseNotRetried: once the lease context is done, the
// transport reports the cancellation instead of burning retries.
func TestHTTPTransportDeadLeaseNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "busy", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := fastRetry(3).Run(ctx, srv.URL, &RunRequest{})
	if err == nil {
		t.Fatal("Run succeeded on a dead lease")
	}
	if got := calls.Load(); got > 1 {
		t.Fatalf("server saw %d attempts on a canceled lease, want ≤ 1", got)
	}
}

// TestHTTPTransportHonorsRetryAfter: a 429 with Retry-After delays the next
// attempt by at least the advertised amount (capped).
func TestHTTPTransportHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstRetryAt atomic.Int64
	start := time.Now()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		firstRetryAt.Store(int64(time.Since(start)))
		serveCheckpoint(t, w)
	}))
	defer srv.Close()

	if _, err := fastRetry(2).Run(context.Background(), srv.URL, &RunRequest{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d := time.Duration(firstRetryAt.Load()); d < time.Second {
		t.Fatalf("retry fired after %v, want ≥ 1s (Retry-After honored)", d)
	}
}
