package dist

import (
	"errors"
	"testing"
	"time"
)

// TestConfigValidation pins the typed rejection of incoherent tuning: a TTL
// at or below the heartbeat interval would flap live workers out of the
// registry between beats, and a target lease duration at or above the lease
// timeout would expire every lease.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string // "" = valid
	}{
		{"zero is valid", Config{Transport: NewLoopback()}, ""},
		{"explicit sane tuning", Config{
			Transport:         NewLoopback(),
			WorkerTTL:         30 * time.Second,
			HeartbeatInterval: 10 * time.Second,
			LeaseTimeout:      time.Minute,
		}, ""},
		{"ttl below heartbeat", Config{
			Transport:         NewLoopback(),
			WorkerTTL:         5 * time.Second,
			HeartbeatInterval: 10 * time.Second,
		}, "WorkerTTL"},
		{"ttl equal to heartbeat", Config{
			Transport:         NewLoopback(),
			WorkerTTL:         10 * time.Second,
			HeartbeatInterval: 10 * time.Second,
		}, "WorkerTTL"},
		{"target at lease timeout", Config{
			Transport:           NewLoopback(),
			LeaseTimeout:        time.Minute,
			TargetLeaseDuration: time.Minute,
		}, "TargetLeaseDuration"},
		{"negative lease timeout", Config{
			Transport:    NewLoopback(),
			LeaseTimeout: -time.Second,
		}, "LeaseTimeout"},
		{"negative strikes", Config{
			Transport:  NewLoopback(),
			MaxStrikes: -1,
		}, "MaxStrikes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				if _, nerr := New(tc.cfg); nerr != nil {
					t.Fatalf("New() = %v, want nil", nerr)
				}
				return
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("rejected field %q, want %q (%v)", ce.Field, tc.field, err)
			}
			// New applies the same gate.
			if _, nerr := New(tc.cfg); !errors.As(nerr, &ce) {
				t.Fatalf("New() = %v, want *ConfigError", nerr)
			}
		})
	}
}
