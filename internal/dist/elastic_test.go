// Tests for the elastic runtime: dynamic membership (join/leave mid-run),
// drained workers returning partial leases, work stealing via lease
// re-splitting, and the exactly-once rejection of late partials from workers
// the coordinator has given up on.
package dist

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"hsfsim/internal/hsf"
)

// expectedPaths runs the job single-process and returns its leaf count.
func expectedPaths(t *testing.T, job *Job) int64 {
	t.Helper()
	plan, err := job.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hsf.Run(plan, hsf.Options{MaxAmplitudes: job.MaxAmplitudes})
	if err != nil {
		t.Fatal(err)
	}
	return res.PathsSimulated
}

// TestWorkerJoinsMidRun: a worker registering while a run is in flight is
// admitted into the rotation and the result reports the join.
func TestWorkerJoinsMidRun(t *testing.T) {
	job := testJob(31)
	lb := NewLoopback()
	lb.AddWorker("w1", ExecOptions{})
	lb.AddWorker("w2", ExecOptions{})
	lb.Delay("w1", 3*time.Millisecond) // keep the run alive long enough to join

	var stats Stats
	var co *Coordinator
	var once atomic.Bool
	co = mustNew(t, Config{
		Transport:          lb,
		Logger:             quietLogger(),
		Stats:              &stats,
		BatchSize:          1,
		MembershipInterval: 5 * time.Millisecond,
		onLease: func(worker string, batch int) {
			if once.CompareAndSwap(false, true) {
				co.Register("w2") // a fresh daemon heartbeats in mid-run
			}
		},
	})
	co.AddWorker("w1")
	res, err := co.Run(context.Background(), job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkersJoined == 0 {
		t.Fatal("mid-run registration was not admitted (WorkersJoined = 0)")
	}
	if res.Workers != 2 {
		t.Fatalf("res.Workers = %d, want 2 (joiner counted)", res.Workers)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)
}

// TestTruncatedLeasesReturnPartials: a worker that completes only part of
// each lease (the shape of a draining worker) has its completed prefixes
// merged and the remainder re-leased — nothing lost, nothing double-merged.
func TestTruncatedLeasesReturnPartials(t *testing.T) {
	job := testJob(32)
	lb := NewLoopback()
	lb.AddWorker("t", ExecOptions{})
	lb.Truncate("t", 1) // every lease returns exactly its first prefix

	var stats Stats
	co := mustNew(t, Config{
		Transport: lb,
		Logger:    quietLogger(),
		Stats:     &stats,
		BatchSize: 3,
	})
	co.AddWorker("t")
	res, err := co.Run(context.Background(), job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PartialReturns == 0 {
		t.Fatal("truncated leases produced no partial returns")
	}
	if got, want := res.PathsSimulated, expectedPaths(t, job); got != want {
		t.Fatalf("PathsSimulated = %d, want exactly %d (no loss, no duplication)", got, want)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)
}

// TestPartitionedWorkerLatePartialDroppedExactlyOnce is the heartbeat-
// partition regression: worker B is cut off from the registry while still
// computing its lease. A steals and completes B's prefixes; B's full reply
// then arrives late and must be rejected whole — merged exactly once, never
// twice.
func TestPartitionedWorkerLatePartialDroppedExactlyOnce(t *testing.T) {
	job := testJob(33)
	lb := NewLoopback()
	lb.AddWorker("a", ExecOptions{})
	lb.AddWorker("b", ExecOptions{})
	lb.Delay("a", 2*time.Millisecond) // give b room to take a lease
	releaseB := lb.Hold("b")          // park b's reply until the run moves on
	defer releaseB()

	var stats Stats
	var co *Coordinator
	var cut atomic.Bool
	co = mustNew(t, Config{
		Transport:          lb,
		Logger:             quietLogger(),
		Stats:              &stats,
		BatchSize:          2,
		MembershipInterval: 5 * time.Millisecond,
		onLease: func(worker string, batch int) {
			if worker == "b" && cut.CompareAndSwap(false, true) {
				// The registry stops hearing from b while its lease runs.
				co.PartitionRegistry("b", true)
			}
		},
	})
	co.AddWorker("a")
	co.AddWorker("b")
	res, err := co.Run(context.Background(), job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Load() {
		t.Skip("b never took a lease; nothing to partition") // shouldn't happen, but don't assert a vacuous pass
	}
	if res.Steals == 0 {
		t.Fatal("the partitioned worker's lease was never stolen")
	}
	if res.WorkersLeft == 0 {
		t.Fatal("the partitioned worker was never marked as having left")
	}
	if stats.PartialsDuplicate.Load() == 0 {
		t.Fatal("b's late reply was not classified as a duplicate")
	}
	if got, want := res.PathsSimulated, expectedPaths(t, job); got != want {
		t.Fatalf("PathsSimulated = %d, want exactly %d (the late duplicate must not double-merge)", got, want)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)
}

// TestStealResplitsSlowWorkersLease: a worker whose lease ages past
// StealDelay has the un-merged tail of that lease re-split to an idle peer;
// its own late reply (now mixing merged and fresh prefixes) is dropped whole
// and the fresh remainder re-run — the accumulator is never split.
func TestStealResplitsSlowWorkersLease(t *testing.T) {
	job := testJob(34)
	lb := NewLoopback()
	lb.AddWorker("fast", ExecOptions{})
	lb.AddWorker("slow", ExecOptions{})
	lb.Delay("fast", 2*time.Millisecond)
	lb.Delay("slow", 300*time.Millisecond) // executes fine, delivers very late

	var stats Stats
	co := mustNew(t, Config{
		Transport:          lb,
		Logger:             quietLogger(),
		Stats:              &stats,
		BatchSize:          4,
		StealDelay:         50 * time.Millisecond,
		MembershipInterval: 10 * time.Millisecond,
	})
	co.AddWorker("fast")
	co.AddWorker("slow")
	res, err := co.Run(context.Background(), job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Fatal("no lease was stolen from the slow worker")
	}
	if res.Resplits == 0 {
		t.Fatal("the steal did not re-split the in-flight lease")
	}
	if got, want := res.PathsSimulated, expectedPaths(t, job); got != want {
		t.Fatalf("PathsSimulated = %d, want exactly %d", got, want)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)
}
