// Durable run storage: the coordinator streams its merged checkpoint through
// a pluggable Store so a run survives the coordinator itself. The layout is
// deliberately object-store shaped — a manifest blob plus numbered
// checkpoint blobs per run — so an S3 implementation is a drop-in later;
// DirStore is the local-filesystem implementation shipped now.
package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hsfsim/internal/hsf"
)

var (
	// ErrNoRun reports a runID the store has never seen.
	ErrNoRun = errors.New("dist: run not found in store")
	// ErrNoCheckpoint reports a known run with no checkpoint flushed yet.
	ErrNoCheckpoint = errors.New("dist: run has no checkpoint yet")
	// ErrBadRunID reports a runID that cannot name a storage object.
	ErrBadRunID = errors.New("dist: invalid run id")
)

// Manifest describes a run well enough for any node to take it over: the
// job to re-plan and the sharding the original coordinator chose.
type Manifest struct {
	Job *Job `json:"job"`
	// PlanHash fingerprints the plan the job compiled to, string-encoded for
	// the same reason RunRequest's is.
	PlanHash uint64 `json:"plan_hash,string"`
	// SplitLevels is the prefix length of the run's task space; a takeover
	// must reuse it so checkpointed prefixes line up.
	SplitLevels int `json:"split_levels"`
}

// Store persists run manifests and checkpoints. Implementations must be
// safe for concurrent use and must make SaveCheckpoint atomic: a reader
// (or a crash) never observes a torn checkpoint.
type Store interface {
	// SaveManifest records the run's description; overwriting with equal
	// content is fine (a takeover re-saves it).
	SaveManifest(runID string, m *Manifest) error
	// LoadManifest returns the run's manifest or ErrNoRun.
	LoadManifest(runID string) (*Manifest, error)
	// SaveCheckpoint durably replaces the run's latest checkpoint.
	SaveCheckpoint(runID string, ck *hsf.Checkpoint) error
	// LoadCheckpoint returns the run's latest checkpoint, ErrNoRun for an
	// unknown run, or ErrNoCheckpoint when none has been flushed yet.
	LoadCheckpoint(runID string) (*hsf.Checkpoint, error)
	// Runs lists the run IDs present in the store.
	Runs() ([]string, error)
}

// validRunID keeps run IDs safe as file and object names.
func validRunID(runID string) error {
	if runID == "" || len(runID) > 128 {
		return fmt.Errorf("%w: %q", ErrBadRunID, runID)
	}
	for _, c := range runID {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return fmt.Errorf("%w: %q (allowed: letters, digits, '.', '_', '-')", ErrBadRunID, runID)
		}
	}
	if strings.Trim(runID, ".") == "" { // "." / ".." and friends
		return fmt.Errorf("%w: %q", ErrBadRunID, runID)
	}
	return nil
}

// DirStore is a Store over a local directory:
//
//	root/<runID>/manifest.json
//	root/<runID>/ckpt-<seq>   (binary hsf checkpoint stream)
//
// Checkpoints are written to a temp file and renamed into place, so the
// latest complete checkpoint survives a crash mid-write; the previous one is
// kept as a fallback and older ones are pruned.
type DirStore struct {
	root string
}

// NewDirStore creates (if needed) and opens a directory-backed store.
func NewDirStore(root string) (*DirStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("dist: opening store root: %w", err)
	}
	return &DirStore{root: root}, nil
}

func (d *DirStore) runDir(runID string) (string, error) {
	if err := validRunID(runID); err != nil {
		return "", err
	}
	return filepath.Join(d.root, runID), nil
}

// writeAtomic writes data next to path and renames it into place.
func writeAtomic(path string, write func(*os.File) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SaveManifest implements Store.
func (d *DirStore) SaveManifest(runID string, m *Manifest) error {
	dir, err := d.runDir(runID)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dist: creating run dir: %w", err)
	}
	return writeAtomic(filepath.Join(dir, "manifest.json"), func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// LoadManifest implements Store.
func (d *DirStore) LoadManifest(runID string) (*Manifest, error) {
	dir, err := d.runDir(runID)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoRun, runID)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("dist: decoding manifest for run %s: %w", runID, err)
	}
	if m.Job == nil {
		return nil, fmt.Errorf("dist: manifest for run %s has no job", runID)
	}
	return &m, nil
}

// checkpointSeqs lists the run's checkpoint sequence numbers, ascending.
func checkpointSeqs(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d", &n); err == nil && fmt.Sprintf("ckpt-%06d", n) == e.Name() {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// SaveCheckpoint implements Store: write ckpt-<next seq> atomically, then
// prune everything older than the previous one.
func (d *DirStore) SaveCheckpoint(runID string, ck *hsf.Checkpoint) error {
	dir, err := d.runDir(runID)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dist: creating run dir: %w", err)
	}
	seqs, err := checkpointSeqs(dir)
	if err != nil {
		return fmt.Errorf("dist: listing checkpoints: %w", err)
	}
	next := 1
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1] + 1
	}
	path := filepath.Join(dir, fmt.Sprintf("ckpt-%06d", next))
	if err := writeAtomic(path, func(f *os.File) error {
		return hsf.WriteCheckpoint(f, ck)
	}); err != nil {
		return fmt.Errorf("dist: writing checkpoint: %w", err)
	}
	// Keep the new one and its predecessor; prune the rest.
	for _, n := range seqs {
		if n < next-1 {
			os.Remove(filepath.Join(dir, fmt.Sprintf("ckpt-%06d", n)))
		}
	}
	return nil
}

// LoadCheckpoint implements Store: newest first, falling back to the
// previous checkpoint if the newest is unreadable.
func (d *DirStore) LoadCheckpoint(runID string) (*hsf.Checkpoint, error) {
	dir, err := d.runDir(runID)
	if err != nil {
		return nil, err
	}
	seqs, err := checkpointSeqs(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoRun, runID)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: listing checkpoints: %w", err)
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, runID)
	}
	var firstErr error
	for i := len(seqs) - 1; i >= 0; i-- {
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf("ckpt-%06d", seqs[i])))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ck, err := hsf.ReadCheckpoint(f)
		f.Close()
		if err == nil {
			return ck, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("dist: no readable checkpoint for run %s: %w", runID, firstErr)
}

// SaveTimeline implements TimelineStore: the run's merged fleet timeline
// (Chrome trace-event JSON) lands as timeline.json next to the
// checkpoints, atomically like everything else in the run directory.
func (d *DirStore) SaveTimeline(runID string, data []byte) error {
	dir, err := d.runDir(runID)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dist: creating run dir: %w", err)
	}
	return writeAtomic(filepath.Join(dir, "timeline.json"), func(f *os.File) error {
		_, err := f.Write(data)
		return err
	})
}

// LoadTimeline implements TimelineStore.
func (d *DirStore) LoadTimeline(runID string) ([]byte, error) {
	dir, err := d.runDir(runID)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, "timeline.json"))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNoRun, runID)
	}
	if err != nil {
		return nil, fmt.Errorf("dist: reading timeline: %w", err)
	}
	return data, nil
}

// Runs implements Store.
func (d *DirStore) Runs() ([]string, error) {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, fmt.Errorf("dist: listing store root: %w", err)
	}
	var runs []string
	for _, e := range entries {
		if e.IsDir() && validRunID(e.Name()) == nil {
			runs = append(runs, e.Name())
		}
	}
	sort.Strings(runs)
	return runs, nil
}

// Takeover resumes a durably stored run on this coordinator: it loads the
// manifest and the latest checkpoint from the store and continues the run
// with the current fleet, flushing back to the same store. A run with no
// checkpoint yet restarts from scratch — nothing was lost, nothing had been
// merged. This is the coordinator-handover procedure: the original
// coordinator can be killed at any point and any node holding the store can
// finish the run.
func (c *Coordinator) Takeover(ctx context.Context, store Store, runID string, opts RunOptions) (*Result, error) {
	m, err := store.LoadManifest(runID)
	if err != nil {
		return nil, err
	}
	ck, err := store.LoadCheckpoint(runID)
	if err != nil && !errors.Is(err, ErrNoCheckpoint) {
		return nil, err
	}
	if ck != nil {
		if ck.PlanHash != m.PlanHash {
			return nil, fmt.Errorf("dist: run %s: checkpoint plan %016x != manifest plan %016x",
				runID, ck.PlanHash, m.PlanHash)
		}
		opts.Resume = ck
	}
	opts.Store = store
	opts.RunID = runID
	return c.Run(ctx, m.Job, opts)
}
