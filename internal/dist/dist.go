// Package dist shards an HSF simulation across worker processes.
//
// The ∏ r_i Feynman paths of an HSF plan are embarrassingly parallel and
// bounded-memory, which makes them the ideal unit of distribution: the
// coordinator compiles the cut plan once, expands the leading cut levels into
// prefix tasks (hsf.EnumeratePrefixes), groups them into disjoint batches,
// and hands out *leases* of batches to workers. A worker executes its batch
// with the ordinary engine (hsf.RunPrefixesContext) and streams back the
// partial accumulator plus leaf counts in the checkpoint wire format; the
// coordinator folds partials together with hsf.Checkpoint.Merge — exactly the
// operation checkpoint resume performs locally.
//
// Failure model: a lease carries a deadline. A worker that dies or stalls has
// its lease canceled and the batch handed to another worker; a worker that
// fails repeatedly is retired from the rotation. Because each batch has at
// most one outstanding lease at a time and merges are guarded by prefix keys
// (hsf.ErrPrefixOverlap), every prefix is merged exactly once. The
// coordinator's merged state is itself an hsf.Checkpoint: a coordinator crash
// resumes from the same snapshot format a single-process run writes.
//
// Transports: HTTPTransport speaks to hsfsimd workers over POST /dist/run;
// Loopback executes leases in-process so the whole protocol is testable
// without sockets.
package dist

import (
	"errors"
	"fmt"
	"strings"

	"hsfsim/internal/cut"
	"hsfsim/internal/qasm"
)

// ErrNoWorkers is returned when a run is started with no registered workers,
// or when every worker has been retired while batches remain.
var ErrNoWorkers = errors.New("dist: no workers available")

// ErrPlanMismatch is returned by a worker whose locally compiled plan does
// not fingerprint-match the coordinator's. It signals nondeterministic
// planning (or mismatched binaries) and is permanent: reassignment cannot
// fix it.
var ErrPlanMismatch = errors.New("dist: worker plan does not match coordinator plan")

// Job describes one distributed simulation. The QASM source is the unit of
// plan exchange: coordinator and workers compile it independently through the
// identical deterministic pipeline, and the resulting plans are
// fingerprint-checked (hsf.PlanHash) before any path is simulated.
type Job struct {
	// QASM is the OpenQASM 2.0 source of the circuit.
	QASM string `json:"qasm"`
	// Method selects the cutting scheme: "standard" or "joint".
	Method string `json:"method"`
	// CutPos places the bipartition (last lower-partition qubit).
	CutPos int `json:"cut_pos"`
	// Strategy selects the joint grouping: "" / "cascade" / "window".
	Strategy string `json:"strategy,omitempty"`
	// MaxBlockQubits caps joint-cut block sizes (0: library default).
	MaxBlockQubits int `json:"max_block_qubits,omitempty"`
	// Tol is the Schmidt truncation tolerance (0: default).
	Tol float64 `json:"tol,omitempty"`
	// UseAnalytic selects analytic cascade decompositions.
	UseAnalytic bool `json:"use_analytic,omitempty"`
	// MaxAmplitudes bounds the accumulator (0: full statevector).
	MaxAmplitudes int `json:"max_amplitudes,omitempty"`
	// FusionMaxQubits configures gate fusion (0: default, <0: disabled).
	FusionMaxQubits int `json:"fusion_max_qubits,omitempty"`
	// Backend selects the walker backend every worker must run: "" / "dense"
	// or "dd". The field is omitted for dense, so dense fleets interoperate
	// with workers predating it; workers that do not know the field reject
	// the lease outright (the wire decoder disallows unknown fields), which
	// keeps a mixed fleet from silently splitting a run across backends.
	Backend string `json:"backend,omitempty"`
}

// BuildPlan compiles the job's circuit into the cut plan every participant
// must agree on.
func (j *Job) BuildPlan() (*cut.Plan, error) {
	c, err := qasm.Parse(strings.NewReader(j.QASM))
	if err != nil {
		return nil, fmt.Errorf("dist: parsing job circuit: %w", err)
	}
	strategy := cut.StrategyNone
	switch j.Method {
	case "standard":
	case "joint", "":
		switch j.Strategy {
		case "", "cascade":
			strategy = cut.StrategyCascade
		case "window":
			strategy = cut.StrategyWindow
		default:
			return nil, fmt.Errorf("dist: unknown strategy %q", j.Strategy)
		}
	default:
		return nil, fmt.Errorf("dist: unknown method %q", j.Method)
	}
	plan, err := cut.BuildPlan(c, cut.Options{
		Partition:      cut.Partition{CutPos: j.CutPos},
		Strategy:       strategy,
		MaxBlockQubits: j.MaxBlockQubits,
		Tol:            j.Tol,
		UseAnalytic:    j.UseAnalytic,
	})
	if err != nil {
		return nil, fmt.Errorf("dist: planning job circuit: %w", err)
	}
	return plan, nil
}
