// Lease scheduling: the shared prefix pool, adaptive lease sizing from
// per-worker lease-duration histograms, work stealing via lease re-splitting,
// and the exactly-once resolution of returned partials.
//
// Invariants (all guarded by session.mu):
//
//   - A prefix is in exactly one of three places: the pool, covered by ≥1
//     live lease (inflight[key] ≥ 1), or merged. Stealing is the only way a
//     prefix is covered by two leases at once, and then first-write-wins:
//     whichever reply arrives first merges, the loser is dropped whole.
//   - The accumulator of a returned partial is a sum over its prefixes and
//     cannot be split, so a reply that mixes already-merged and fresh
//     prefixes is dropped whole and its fresh prefixes are requeued.
//   - A prefix leaves the merged set never; the pool and inflight maps only
//     shrink toward it. unmerged==0 ends the run.
package dist

import (
	"context"
	"fmt"
	"time"

	"hsfsim/internal/hsf"
	"hsfsim/internal/telemetry/trace"
)

// nextLease blocks until the worker can be granted a lease (from the pool,
// or stolen from a slow/leaving peer) and returns it, or returns nil when
// the loop should exit: run over, worker retired, or worker leaving with no
// pool work left.
func (s *session) nextLease(w *sessWorker) *lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	// An idle worker shows up on the fleet timeline as a lease-wait span,
	// started lazily before the first block so the uncontended fast path
	// records nothing.
	var wait trace.Span
	waiting := false
	defer wait.End()
	for {
		if s.done || s.firstErr != nil || s.runCtx.Err() != nil || w.retired {
			return nil
		}
		if len(s.pool) > 0 {
			return s.takeFromPoolLocked(w)
		}
		if w.leaving {
			return nil
		}
		if l := s.stealLocked(w); l != nil {
			return l
		}
		if s.unmerged == 0 {
			return nil
		}
		if !waiting {
			wait = s.trc.Start(s.root, "lease-wait")
			wait.SetStr("worker", w.addr)
			wait.SetLane(w.lane)
			waiting = true
		}
		s.cond.Wait()
	}
}

// takeFromPoolLocked grants the worker a lease of up to its adaptive size
// from the front of the pool.
func (s *session) takeFromPoolLocked(w *sessWorker) *lease {
	n := s.leaseSizeLocked(w)
	if n > len(s.pool) {
		n = len(s.pool)
	}
	prefixes := make([][]int, n)
	copy(prefixes, s.pool[:n])
	s.pool = s.pool[n:]
	return s.grantLocked(w, prefixes, nil)
}

// grantLocked registers a new lease over the given prefixes. A non-nil
// victim marks this a steal: the new lease's span links the victim's, so
// the timeline shows which grant the thief re-split.
func (s *session) grantLocked(w *sessWorker, prefixes [][]int, victim *lease) *lease {
	l := &lease{
		id:       s.nextID,
		prefixes: prefixes,
		keys:     make([]string, len(prefixes)),
		worker:   w.addr,
		started:  time.Now(),
		isSteal:  victim != nil,
	}
	s.nextID++
	l.span = s.trc.Start(s.root, "lease")
	l.span.SetStr("worker", w.addr)
	l.span.SetInt("prefixes", int64(len(prefixes)))
	l.span.SetLane(w.lane)
	if victim != nil {
		l.span.Link(victim.sc)
	}
	l.sc = l.span.Context()
	for i, p := range prefixes {
		k := hsf.PrefixKey(p)
		l.keys[i] = k
		delete(s.pooled, k)
		s.inflight[k]++
	}
	s.leases[l.id] = l
	return l
}

// leaseSizeLocked returns how many prefixes to grant this worker. With a
// fixed BatchSize the answer is constant; otherwise leases start at the base
// size and are resized from the worker's lease-duration histogram so each
// lease lands near TargetLeaseDuration: slow workers get smaller leases
// (cheap to reassign), fast workers larger ones (less lease overhead).
func (s *session) leaseSizeLocked(w *sessWorker) int {
	if s.co.cfg.BatchSize > 0 {
		return s.co.cfg.BatchSize
	}
	n := s.baseLease
	if w.prefixesDone > 0 {
		if snap := w.hist.Snapshot(); snap.Count > 0 && snap.SumSeconds > 0 {
			perPrefix := snap.SumSeconds / float64(w.prefixesDone)
			n = int(s.co.cfg.TargetLeaseDuration.Seconds() / perPrefix)
		}
	}
	if n < 1 {
		n = 1
	}
	if max := 4 * s.baseLease; n > max {
		n = max
	}
	return n
}

// stealLocked re-splits an in-flight lease: when the pool is dry and a peer
// lease is stealable — its holder is leaving or retired, or the lease has
// aged past StealDelay — the idle worker duplicates the un-merged,
// single-covered tail of the oldest such lease. The victim keeps running;
// whichever reply lands first wins.
func (s *session) stealLocked(w *sessWorker) *lease {
	now := time.Now()
	var victim *lease
	for _, l := range s.leases {
		if l.worker == w.addr || l.stolen {
			continue
		}
		vw := s.workers[l.worker]
		eligible := now.Sub(l.started) > s.co.cfg.StealDelay
		if vw != nil && (vw.leaving || vw.retired) {
			eligible = true
		}
		if !eligible {
			continue
		}
		if len(s.stealableKeysLocked(l)) == 0 {
			continue
		}
		if victim == nil || l.started.Before(victim.started) {
			victim = l
		}
	}
	if victim == nil {
		return nil
	}
	idx := s.stealableKeysLocked(victim)
	take := idx
	vw := s.workers[victim.worker]
	if vw == nil || (!vw.leaving && !vw.retired) {
		// The victim is merely slow, not gone: re-split, leaving it the front
		// half it is presumably already working through.
		half := (len(idx) + 1) / 2
		take = idx[len(idx)-half:]
	}
	if limit := s.leaseSizeLocked(w); len(take) > limit {
		take = take[len(take)-limit:]
	}
	prefixes := make([][]int, len(take))
	for i, j := range take {
		prefixes[i] = victim.prefixes[j]
	}
	victim.stolen = true
	s.steals.Add(1)
	s.co.cfg.Stats.LeasesStolen.Add(1)
	if len(take) < len(victim.prefixes) {
		s.resplits.Add(1)
		s.co.cfg.Stats.LeasesResplit.Add(1)
	}
	s.co.cfg.Logger.Printf("dist: %s stealing %d/%d prefixes of lease %d from %s",
		w.addr, len(take), len(victim.prefixes), victim.id, victim.worker)
	return s.grantLocked(w, prefixes, victim)
}

// stealableKeysLocked returns the indices of the lease's prefixes that are
// un-merged and covered by this lease alone.
func (s *session) stealableKeysLocked(l *lease) []int {
	var idx []int
	for i, k := range l.keys {
		if !s.merged[k] && s.inflight[k] == 1 {
			idx = append(idx, i)
		}
	}
	return idx
}

// requeueLocked returns the lease's prefixes that are still un-merged and
// not covered by another live lease to the pool.
func (s *session) requeueLocked(l *lease) {
	for i, k := range l.keys {
		if !s.merged[k] && s.inflight[k] == 0 && !s.pooled[k] {
			s.pool = append(s.pool, l.prefixes[i])
			s.pooled[k] = true
		}
	}
}

// resolve applies one lease reply to the session state. Exactly-once is
// enforced here: a reply whose prefixes are all fresh merges whole; all
// already merged (a stolen lease lost the race, or a duplicate delivery) is
// dropped whole; a mix is dropped whole — the accumulator cannot be split —
// and its fresh prefixes go back to the pool.
func (s *session) resolve(w *sessWorker, l *lease, part *hsf.Checkpoint, err error, dur time.Duration) {
	cfg := &s.co.cfg
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.cond.Broadcast()
	delete(s.leases, l.id)
	for _, k := range l.keys {
		if s.inflight[k] > 0 {
			s.inflight[k]--
		}
	}
	if err != nil {
		l.span.SetStr("err", "failed")
	} else if part != nil {
		l.span.SetInt("paths", part.PathsSimulated)
	}
	l.span.End() // grant→resolve, whatever the outcome

	if err != nil {
		if context.Cause(s.runCtx) != nil {
			return // run already over (done, failed, or canceled externally)
		}
		if IsPermanent(err) {
			s.failLocked(err)
			return
		}
		s.strikeLocked(w, l, fmt.Sprintf("lease %d on %s failed: %v", l.id, w.addr, err))
		return
	}

	fresh, dup := 0, 0
	for _, p := range part.Prefixes {
		if s.merged[hsf.PrefixKey(p)] {
			dup++
		} else {
			fresh++
		}
	}
	switch {
	case len(part.Prefixes) == 0:
		// A full lease spent with zero progress: strike, so a worker that
		// keeps returning empty partials cannot stall the run forever.
		if context.Cause(s.runCtx) != nil {
			return
		}
		s.strikeLocked(w, l, fmt.Sprintf("lease %d on %s returned an empty partial", l.id, w.addr))
	case dup == 0:
		msp := s.trc.Start(l.sc, "merge")
		msp.SetInt("prefixes", int64(fresh))
		mergeErr := s.ck.Merge(part)
		msp.End()
		if mergeErr != nil {
			s.failLocked(fmt.Errorf("dist: lease %d: %w", l.id, mergeErr))
			return
		}
		for _, p := range part.Prefixes {
			s.merged[hsf.PrefixKey(p)] = true
		}
		s.unmerged -= fresh
		w.strikes = 0
		w.prefixesDone += int64(fresh)
		w.hist.Observe(dur)
		cfg.Stats.PrefixesMerged.Add(int64(fresh))
		cfg.Stats.PathsSimulated.Add(part.PathsSimulated)
		s.progress.Add(part.PathsSimulated)
		// The reply need not cover the lease: a truncated (draining) worker
		// returns a prefix of its lease, and a duplicated delivery can carry a
		// different lease's prefixes entirely. Judge coverage by the lease's
		// own keys — anything of ours still un-merged goes back to the pool.
		covered := true
		for _, k := range l.keys {
			if !s.merged[k] {
				covered = false
				break
			}
		}
		if !covered {
			s.partials.Add(1)
			cfg.Stats.PartialReturns.Add(1)
			s.requeueLocked(l)
		}
		if s.unmerged == 0 && s.firstErr == nil && !s.done {
			s.done = true
			s.cancel(errAllDone)
		}
	case fresh == 0:
		// Entirely merged already: the late loser of a stolen lease or a
		// duplicated delivery. Dropped whole — this is the no-double-merge
		// guarantee.
		w.strikes = 0
		cfg.Stats.PartialsDuplicate.Add(1)
		cfg.Logger.Printf("dist: dropping duplicate partial for lease %d (%s)", l.id, w.addr)
		s.requeueLocked(l)
	default:
		// Mixed: some prefixes merged elsewhere while this lease ran. The
		// accumulator is a sum over all of them, so nothing is salvageable.
		w.strikes = 0
		cfg.Stats.PartialsMixed.Add(1)
		cfg.Stats.PartialsDuplicate.Add(1)
		cfg.Logger.Printf("dist: dropping mixed partial for lease %d (%s): %d fresh, %d already merged",
			l.id, w.addr, fresh, dup)
		s.requeueLocked(l)
	}
}

// strikeLocked charges the worker one strike, requeues the lease's orphaned
// prefixes, and retires the worker when it strikes out.
func (s *session) strikeLocked(w *sessWorker, l *lease, msg string) {
	cfg := &s.co.cfg
	w.strikes++
	s.reassigned.Add(1)
	cfg.Stats.LeasesReassigned.Add(1)
	cfg.Logger.Printf("dist: %s (strike %d/%d)", msg, w.strikes, cfg.MaxStrikes)
	s.requeueLocked(l)
	if w.strikes >= cfg.MaxStrikes {
		w.retired = true
		cfg.Stats.WorkersRetired.Add(1)
		cfg.Logger.Printf("dist: retiring worker %s after %d consecutive failures", w.addr, w.strikes)
	}
}
