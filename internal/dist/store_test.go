package dist

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"hsfsim/internal/hsf"
)

func testCheckpoint(paths int64) *hsf.Checkpoint {
	return &hsf.Checkpoint{
		PlanHash:       0xabcd,
		NumQubits:      3,
		M:              4,
		SplitLevels:    1,
		Prefixes:       [][]int{{0}, {1}},
		PathsSimulated: paths,
		Acc:            []complex128{1, 2i, 3, 0},
	}
}

func TestDirStoreRoundTrip(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Job: testJob(1), PlanHash: 0xabcd, SplitLevels: 1}
	if err := st.SaveManifest("run-a", m); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadManifest("run-a")
	if err != nil {
		t.Fatal(err)
	}
	if got.PlanHash != m.PlanHash || got.SplitLevels != m.SplitLevels || got.Job.QASM != m.Job.QASM {
		t.Fatalf("manifest round trip mismatch: %+v", got)
	}

	if _, err := st.LoadCheckpoint("run-a"); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("LoadCheckpoint before any flush = %v, want ErrNoCheckpoint", err)
	}
	ck := testCheckpoint(7)
	if err := st.SaveCheckpoint("run-a", ck); err != nil {
		t.Fatal(err)
	}
	back, err := st.LoadCheckpoint("run-a")
	if err != nil {
		t.Fatal(err)
	}
	if back.PathsSimulated != 7 || !reflect.DeepEqual(back.Prefixes, ck.Prefixes) || !reflect.DeepEqual(back.Acc, ck.Acc) {
		t.Fatalf("checkpoint round trip mismatch: %+v", back)
	}

	runs, err := st.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runs, []string{"run-a"}) {
		t.Fatalf("Runs() = %v", runs)
	}
	if _, err := st.LoadManifest("never-seen"); !errors.Is(err, ErrNoRun) {
		t.Fatalf("LoadManifest(unknown) = %v, want ErrNoRun", err)
	}
}

func TestDirStoreRejectsUnsafeRunIDs(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "..", "a/b", "../escape", "x\x00y", "."} {
		if err := st.SaveManifest(id, &Manifest{Job: testJob(1)}); !errors.Is(err, ErrBadRunID) {
			t.Fatalf("SaveManifest(%q) = %v, want ErrBadRunID", id, err)
		}
		if _, err := st.LoadCheckpoint(id); !errors.Is(err, ErrBadRunID) {
			t.Fatalf("LoadCheckpoint(%q) = %v, want ErrBadRunID", id, err)
		}
	}
}

// TestDirStorePrunesAndFallsBack: repeated flushes keep only the newest
// checkpoint and its predecessor, and a corrupted newest file falls back to
// that predecessor instead of failing the takeover.
func TestDirStorePrunesAndFallsBack(t *testing.T) {
	root := t.TempDir()
	st, err := NewDirStore(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := st.SaveCheckpoint("r", testCheckpoint(i)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(root, "r"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if !reflect.DeepEqual(names, []string{"ckpt-000004", "ckpt-000005"}) {
		t.Fatalf("after 5 flushes kept %v, want the newest two", names)
	}

	// Corrupt the newest; the previous flush must be served.
	if err := os.WriteFile(filepath.Join(root, "r", "ckpt-000005"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := st.LoadCheckpoint("r")
	if err != nil {
		t.Fatal(err)
	}
	if back.PathsSimulated != 4 {
		t.Fatalf("fallback served PathsSimulated=%d, want 4", back.PathsSimulated)
	}
}

// TestTakeoverResumesFromStore runs a job with durable flushing, then has a
// brand-new coordinator resume it purely from the store: the manifest
// reconstructs the job, the checkpoint seeds the merged set, and the final
// amplitudes match a single-process run.
func TestTakeoverResumesFromStore(t *testing.T) {
	job := testJob(21)
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: run partway, then get canceled. BatchSize 1 and a per-lease
	// delay make the cancellation land mid-run; every completed lease has
	// been flushed by then (tiny FlushInterval).
	lb := NewLoopback()
	lb.AddWorker("w", ExecOptions{})
	lb.Delay("w", 2*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var leases int
	co := mustNew(t, Config{
		Transport: lb,
		Logger:    quietLogger(),
		BatchSize: 1,
		onLease: func(worker string, batch int) {
			leases++
			if leases == 3 {
				cancel()
			}
		},
	})
	co.AddWorker("w")
	_, err = co.Run(ctx, job, RunOptions{Store: st, RunID: "handover", FlushInterval: time.Millisecond})
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}

	ck, err := st.LoadCheckpoint("handover")
	if err != nil {
		t.Fatal(err)
	}
	if len(ck.Prefixes) == 0 {
		t.Fatal("no prefixes were durably flushed before the cancellation")
	}

	// Phase 2: a fresh coordinator with a fresh fleet takes the run over.
	lb2 := NewLoopback()
	lb2.AddWorker("w2", ExecOptions{})
	co2 := mustNew(t, Config{Transport: lb2, Logger: quietLogger()})
	co2.AddWorker("w2")
	res, err := co2.Takeover(context.Background(), st, "handover", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)

	// The takeover only leased what the first run had not merged.
	if int(res.PathsSimulated) == 0 {
		t.Fatal("takeover simulated no paths")
	}
	if _, err := co2.Takeover(context.Background(), st, "no-such-run", RunOptions{}); !errors.Is(err, ErrNoRun) {
		t.Fatalf("Takeover(unknown) = %v, want ErrNoRun", err)
	}
}

// TestTakeoverRejectsMismatchedCheckpoint: a checkpoint whose plan hash does
// not match the manifest must be refused, not silently merged.
func TestTakeoverRejectsMismatchedCheckpoint(t *testing.T) {
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveManifest("r", &Manifest{Job: testJob(1), PlanHash: 1, SplitLevels: 1}); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveCheckpoint("r", testCheckpoint(1)); err != nil { // PlanHash 0xabcd != 1
		t.Fatal(err)
	}
	co := mustNew(t, Config{Transport: NewLoopback(), Logger: quietLogger()})
	co.AddWorker("w")
	if _, err := co.Takeover(context.Background(), st, "r", RunOptions{}); err == nil {
		t.Fatal("mismatched checkpoint accepted")
	}
}
