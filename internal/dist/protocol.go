// Wire types of the dist protocol. Requests are JSON (they are small: a job
// spec plus a batch of prefix vectors); successful /dist/run responses are
// the binary checkpoint stream (hsf.WriteCheckpoint), which carries the
// multi-megabyte partial accumulator far more compactly than JSON could.
package dist

import "fmt"

// RunRequest is one lease: a disjoint batch of prefix tasks to execute.
type RunRequest struct {
	Job Job `json:"job"`
	// PlanHash is the coordinator's plan fingerprint, string-encoded because
	// JSON numbers cannot carry 64 bits faithfully. The worker must reproduce
	// it from Job or refuse the lease (ErrPlanMismatch).
	PlanHash uint64 `json:"plan_hash,string"`
	// SplitLevels is the prefix length every batch in this run uses.
	SplitLevels int `json:"split_levels"`
	// Prefixes is the batch: term-choice vectors, each of length SplitLevels.
	Prefixes [][]int `json:"prefixes"`
	// LeaseMillis is the coordinator's lease deadline hint; the worker aborts
	// the run after this long so a stalled simulation frees its slot even if
	// the coordinator's connection lingers. 0 means no worker-side deadline.
	LeaseMillis int `json:"lease_ms,omitempty"`
	// AllowPartial lets the worker answer a canceled or deadline-expired
	// lease with the prefixes it did finish (a valid partial checkpoint)
	// instead of an error — the drain path. Workers predating this field
	// reject requests carrying it; keep fleets on one version.
	AllowPartial bool `json:"allow_partial,omitempty"`
}

// Validate performs cheap structural checks before any planning work.
func (r *RunRequest) Validate() error {
	if r.Job.QASM == "" {
		return fmt.Errorf("dist: empty job circuit")
	}
	if r.SplitLevels < 0 {
		return fmt.Errorf("dist: negative split levels")
	}
	if len(r.Prefixes) == 0 {
		return fmt.Errorf("dist: empty prefix batch")
	}
	for _, p := range r.Prefixes {
		if len(p) != r.SplitLevels {
			return fmt.Errorf("dist: prefix length %d != split levels %d", len(p), r.SplitLevels)
		}
	}
	return nil
}

// RegisterRequest announces a worker to a coordinator. Workers re-register
// periodically as a heartbeat; entries expire after the registry TTL.
type RegisterRequest struct {
	// Addr is the worker's reachable host:port.
	Addr string `json:"addr"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	// Workers is the number of currently registered live workers.
	Workers int `json:"workers"`
	// TTLMillis tells the worker how often to re-register (at most this).
	TTLMillis int `json:"ttl_ms"`
	// HeartbeatMillis is the coordinator's preferred re-registration cadence
	// (strictly below the TTL). 0: the worker derives one from the TTL.
	HeartbeatMillis int `json:"heartbeat_ms,omitempty"`
}

// DeregisterRequest announces a draining worker (POST /dist/deregister): the
// coordinator stops granting it leases and re-splits what it holds.
type DeregisterRequest struct {
	// Addr is the worker's registered host:port.
	Addr string `json:"addr"`
}

// WorkerList reports the registry (GET /dist/workers).
type WorkerList struct {
	Workers []string `json:"workers"`
}

// Result reports a completed distributed run.
type Result struct {
	// Amplitudes is the merged accumulator: the first M amplitudes of the
	// full statevector.
	Amplitudes []complex128
	// NumPaths / Log2Paths describe the plan's path space.
	NumPaths  uint64
	Log2Paths float64
	// PathsSimulated counts leaves actually executed across all workers
	// (includes leaves replayed from a resumed checkpoint).
	PathsSimulated int64
	// NumCuts, NumBlocks, NumSeparateCuts describe the plan.
	NumCuts         int
	NumBlocks       int
	NumSeparateCuts int
	// SplitLevels and Batches describe the sharding that was used; Batches
	// counts leases granted (adaptive sizing makes this a scheduling
	// outcome, not a plan property).
	SplitLevels int
	Batches     int
	// Workers is the number of distinct workers ever admitted to the run;
	// Reassignments counts leases that failed and were handed back.
	Workers       int
	Reassignments int64
	// Elastic-runtime outcomes: leases created by stealing, in-flight leases
	// re-split, successful partial (drain) returns, and membership churn.
	Steals         int64
	Resplits       int64
	PartialReturns int64
	WorkersJoined  int64
	WorkersLeft    int64
}
