package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hsfsim/internal/hsf"
	"hsfsim/internal/telemetry"
	"hsfsim/internal/telemetry/trace"
)

// Stats are process-wide counters a coordinator updates; a daemon exposes
// them through expvar. All fields are monotonic except InFlightLeases.
type Stats struct {
	Runs              atomic.Int64
	LeasesGranted     atomic.Int64
	LeasesReassigned  atomic.Int64
	WorkersRetired    atomic.Int64
	PrefixesMerged    atomic.Int64
	PathsSimulated    atomic.Int64
	InFlightLeases    atomic.Int64
	PartialsDuplicate atomic.Int64
	// Elastic-runtime counters.
	LeasesStolen   atomic.Int64 // leases created by stealing from an in-flight lease
	LeasesResplit  atomic.Int64 // in-flight leases split so part could be re-leased
	PartialReturns atomic.Int64 // successful replies covering fewer prefixes than leased
	PartialsMixed  atomic.Int64 // replies dropped whole because they mixed merged and fresh prefixes
	StoreFlushes   atomic.Int64 // checkpoints written to the durable store
	WorkersJoined  atomic.Int64 // workers admitted into a run after it started
	WorkersLeft    atomic.Int64 // workers that dropped out of a run's rotation
}

// Coordinator shards prefix-task leases across an elastic worker fleet.
type Coordinator struct {
	cfg Config
	reg *registry

	mu       sync.Mutex
	sessions map[*session]struct{}
}

// New returns a Coordinator over the given configuration. The configuration
// is validated first; a rejected field is reported as a *ConfigError.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Coordinator{
		cfg:      cfg,
		reg:      newRegistry(cfg.WorkerTTL),
		sessions: make(map[*session]struct{}),
	}, nil
}

// AddWorker pins a static worker (never expires). Running sessions admit it
// at their next membership poll.
func (c *Coordinator) AddWorker(addr string) {
	c.reg.addStatic(addr)
	c.pokeSessions()
}

// Register records a dynamic worker heartbeat and returns the fleet size.
// Running sessions admit a new worker at their next membership poll.
func (c *Coordinator) Register(addr string) int {
	c.reg.register(addr)
	c.pokeSessions()
	return len(c.reg.workers())
}

// Deregister removes a worker that announced it is draining. Its in-flight
// leases become immediately stealable; its loop exits once idle.
func (c *Coordinator) Deregister(addr string) {
	c.reg.remove(addr)
	c.pokeSessions()
}

// RemoveWorker drops a worker from the fleet.
func (c *Coordinator) RemoveWorker(addr string) {
	c.reg.remove(addr)
	c.pokeSessions()
}

// PartitionRegistry simulates a network partition between the registry and
// addr: heartbeats from addr are ignored and it is excluded from the fleet,
// while any lease it is already executing keeps running. Chaos tests use
// this to pin the exactly-once guarantee for partials returned by workers
// the coordinator has given up on.
func (c *Coordinator) PartitionRegistry(addr string, cut bool) {
	c.reg.partition(addr, cut)
	c.pokeSessions()
}

// Workers returns the live fleet.
func (c *Coordinator) Workers() []string { return c.reg.workers() }

// TTL returns the dynamic-registration heartbeat TTL.
func (c *Coordinator) TTL() time.Duration { return c.reg.ttl }

// HeartbeatInterval returns the re-registration cadence advertised to
// workers.
func (c *Coordinator) HeartbeatInterval() time.Duration { return c.cfg.HeartbeatInterval }

func (c *Coordinator) addSession(s *session) {
	c.mu.Lock()
	c.sessions[s] = struct{}{}
	c.mu.Unlock()
}

func (c *Coordinator) removeSession(s *session) {
	c.mu.Lock()
	delete(c.sessions, s)
	c.mu.Unlock()
}

// pokeSessions nudges every running session to re-read the registry now
// instead of waiting for the next membership tick.
func (c *Coordinator) pokeSessions() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for s := range c.sessions {
		select {
		case s.poke <- struct{}{}:
		default:
		}
	}
}

// RunOptions carries per-run I/O: crash recovery in and out, durable
// checkpoint storage, plus optional observability sinks.
type RunOptions struct {
	// Resume seeds the merged state from a prior checkpoint: already-merged
	// prefixes are never leased again.
	Resume *hsf.Checkpoint
	// CheckpointWriter receives the merged state if the run stops
	// prematurely, in the exact format single-process runs write.
	CheckpointWriter io.Writer
	// Store, when non-nil, receives the run manifest up front and merged
	// checkpoints on a cadence (and once at exit), so any node can take the
	// run over after a coordinator crash (see Coordinator.Takeover).
	Store Store
	// RunID names the run inside the Store. Empty: the plan hash in hex.
	RunID string
	// FlushInterval is the durable checkpoint cadence. 0: 5 seconds.
	FlushInterval time.Duration
	// Telemetry, when non-nil, records the run's lease timeline (one
	// LeaseEvent per lease, lease-duration histogram) and final totals.
	Telemetry *telemetry.Recorder
	// Progress, when non-nil, is advanced as leases merge, so callers can
	// render a live paths-done/total ticker for distributed runs too.
	Progress *telemetry.Tracker
}

// Run executes the job across the current fleet and returns the merged
// result. It is the coordinator side of the protocol: enumerate once, lease
// prefix batches from a shared pool, merge partials exactly once, requeue or
// re-split on failure, and keep the fleet elastic — workers joining the
// registry mid-run are admitted, leavers are drained.
func (c *Coordinator) Run(ctx context.Context, job *Job, opts RunOptions) (*Result, error) {
	plan, err := job.BuildPlan()
	if err != nil {
		return nil, err
	}
	workers := c.reg.workers()
	if len(workers) == 0 {
		return nil, ErrNoWorkers
	}
	c.cfg.Stats.Runs.Add(1)

	planHash := hsf.PlanHash(plan)
	m := hsf.AccumulatorLen(plan, job.MaxAmplitudes)

	splitLevels := 0
	if opts.Resume != nil {
		splitLevels = opts.Resume.SplitLevels
	} else {
		splitLevels = hsf.ChooseSplitLevels(plan, c.cfg.TasksPerWorker*len(workers))
	}
	prefixes := hsf.EnumeratePrefixes(plan, splitLevels)

	ck := &hsf.Checkpoint{
		PlanHash:    planHash,
		NumQubits:   plan.NumQubits,
		M:           m,
		SplitLevels: splitLevels,
		Acc:         make([]complex128, m),
	}
	merged := make(map[string]bool, len(prefixes))
	if opts.Resume != nil {
		if err := ck.Merge(opts.Resume); err != nil {
			return nil, fmt.Errorf("dist: resume checkpoint rejected: %w", err)
		}
		for _, p := range opts.Resume.Prefixes {
			merged[hsf.PrefixKey(p)] = true
		}
	}
	var pending [][]int
	for _, p := range prefixes {
		if !merged[hsf.PrefixKey(p)] {
			pending = append(pending, p)
		}
	}

	runID := opts.RunID
	if runID == "" {
		runID = fmt.Sprintf("%016x", planHash)
	}
	if opts.Store != nil {
		if err := opts.Store.SaveManifest(runID, &Manifest{Job: job, PlanHash: planHash, SplitLevels: splitLevels}); err != nil {
			return nil, fmt.Errorf("dist: saving run manifest: %w", err)
		}
	}

	np, _ := plan.NumPaths()
	npClamped := int64(np)
	if np > 1<<63-1 {
		npClamped = 1<<63 - 1
	}
	resumedPaths := ck.PathsSimulated
	opts.Progress.Start(npClamped, resumedPaths, nil)
	start := time.Now()

	// The flight recorder rides the caller's context; a durable run with no
	// recorder gets a private one so the fleet timeline in the store never
	// silently goes missing.
	trc, parentSC := trace.FromContext(ctx)
	if trc == nil && opts.Store != nil {
		trc = trace.NewRecorder(0)
	}
	rootSpan := trc.Start(parentSC, "dist-run")
	rootSpan.SetStr("run", runID)
	rootSpan.SetInt("prefixes", int64(len(pending)))
	rootSpan.SetInt("workers", int64(len(workers)))
	if rid := trace.RequestID(ctx); rid != "" {
		rootSpan.SetStr("req", rid)
	}

	s := &session{
		co:       c,
		job:      job,
		planHash: planHash,
		split:    splitLevels,
		ck:       ck,
		merged:   merged,
		unmerged: len(pending),
		inflight: make(map[string]int),
		pooled:   make(map[string]bool, len(pending)),
		leases:   make(map[int]*lease),
		workers:  make(map[string]*sessWorker),
		poke:     make(chan struct{}, 1),
		tel:      opts.Telemetry,
		trc:      trc,
		root:     rootSpan.Context(),
		progress: opts.Progress,
		start:    start,
	}
	s.cond = sync.NewCond(&s.mu)
	s.pool = append(s.pool, pending...)
	for _, p := range pending {
		s.pooled[hsf.PrefixKey(p)] = true
	}
	s.baseLease = c.cfg.BatchSize
	if s.baseLease <= 0 {
		s.baseLease = (len(pending) + 4*len(workers) - 1) / (4 * len(workers))
		if s.baseLease < 1 {
			s.baseLease = 1
		}
	}

	finish := func() {
		rootSpan.End()
		if opts.Store != nil {
			// The merged fleet timeline lands next to the checkpoints, after
			// the root span closes so the snapshot includes it.
			s.saveTimeline(opts.Store, runID)
		}
		opts.Telemetry.FinishRun(telemetry.RunTotals{
			TotalPaths: npClamped,
			Log2Paths:  plan.Log2Paths(),
			Simulated:  ck.PathsSimulated,
			Resumed:    resumedPaths,
			Workers:    len(workers),
			Gomaxprocs: runtime.GOMAXPROCS(0),
			Elapsed:    time.Since(start),
		})
	}
	result := func() *Result {
		return &Result{
			Amplitudes:      ck.Acc,
			NumPaths:        np,
			Log2Paths:       plan.Log2Paths(),
			PathsSimulated:  ck.PathsSimulated,
			NumCuts:         len(plan.Cuts),
			NumBlocks:       plan.NumBlocks(),
			NumSeparateCuts: plan.NumSeparateCuts(),
			SplitLevels:     splitLevels,
			Batches:         int(s.granted.Load()),
			Workers:         s.spawnedCount(),
			Reassignments:   s.reassigned.Load(),
			Steals:          s.steals.Load(),
			Resplits:        s.resplits.Load(),
			PartialReturns:  s.partials.Load(),
			WorkersJoined:   s.joined.Load(),
			WorkersLeft:     s.left.Load(),
		}
	}
	if len(pending) == 0 { // everything already checkpointed
		if opts.Store != nil {
			s.flushStore(opts.Store, runID)
		}
		finish()
		return result(), nil
	}

	s.runCtx, s.cancel = context.WithCancelCause(ctx)
	defer s.cancel(nil)
	// Any state transition that could unblock a waiting worker loop must
	// broadcast; run-context cancellation is one of them.
	stopWake := context.AfterFunc(s.runCtx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stopWake()

	c.addSession(s)
	defer c.removeSession(s)

	s.mu.Lock()
	for _, w := range workers {
		s.addWorkerLocked(w, true)
	}
	s.mu.Unlock()

	s.wg.Add(1)
	go s.membershipLoop()
	if opts.Store != nil {
		interval := opts.FlushInterval
		if interval <= 0 {
			interval = 5 * time.Second
		}
		s.wg.Add(1)
		go s.flusher(opts.Store, runID, interval)
	}

	<-s.runCtx.Done()
	s.wg.Wait()

	if opts.Store != nil {
		// Final durable flush: the handover point. Written on success and
		// failure alike so a takeover never replays merged work.
		s.flushStore(opts.Store, runID)
	}
	finish()
	if err := s.err(); err != nil {
		if opts.CheckpointWriter != nil {
			if werr := hsf.WriteCheckpoint(opts.CheckpointWriter, ck); werr != nil {
				return nil, errors.Join(err, fmt.Errorf("dist: writing checkpoint: %w", werr))
			}
		}
		return nil, err
	}
	return result(), nil
}

// session is the mutable state of one Run: the prefix pool, in-flight
// leases, the merged checkpoint, and membership bookkeeping shared by the
// per-worker loops.
type session struct {
	co       *Coordinator
	job      *Job
	planHash uint64
	split    int

	mu   sync.Mutex
	cond *sync.Cond // signaled whenever pool/lease/membership state changes

	ck       *hsf.Checkpoint
	merged   map[string]bool // prefix key → merged into ck
	unmerged int             // prefixes not yet merged
	pool     [][]int         // pending prefixes, not leased anywhere
	pooled   map[string]bool // prefix key → present in pool
	inflight map[string]int  // prefix key → live leases covering it
	leases   map[int]*lease  // live leases by id
	nextID   int

	workers     map[string]*sessWorker
	spawned     int // distinct workers ever admitted
	activeLoops int // worker loops currently running
	firstErr    error
	done        bool // every prefix merged

	poke   chan struct{} // nudges the membership loop
	runCtx context.Context
	cancel context.CancelCauseFunc
	wg     sync.WaitGroup

	granted    atomic.Int64
	reassigned atomic.Int64
	steals     atomic.Int64
	resplits   atomic.Int64
	partials   atomic.Int64
	joined     atomic.Int64
	left       atomic.Int64

	baseLease int
	tel       *telemetry.Recorder
	progress  *telemetry.Tracker
	start     time.Time

	// trc records the run's spans (lease grant→resolve, lease-wait, merge,
	// store flushes, reconstructed worker execution windows); root is the
	// dist-run span they all hang under. Nil/zero when the run is untraced.
	trc  *trace.Recorder
	root trace.SpanContext
}

// lease is one in-flight grant: a set of prefixes executing on one worker.
type lease struct {
	id       int
	prefixes [][]int
	keys     []string
	worker   string
	started  time.Time
	stolen   bool // a thief has already re-leased part of this work
	isSteal  bool // this lease was created by stealing

	// span covers grant→resolve on the coordinator timeline; sc is its
	// propagation context — it rides the traceparent header to the worker,
	// and a thief's lease span links the victim's sc.
	span trace.Span
	sc   trace.SpanContext
}

// sessWorker is one worker's standing in the session.
type sessWorker struct {
	addr         string
	lane         int  // timeline row in trace output (1-based; 0 is the coordinator)
	running      bool // loop goroutine alive
	leaving      bool // dropped out of the registry; drains, may rejoin
	retired      bool // struck out; sticky for the run
	strikes      int
	prefixesDone int64
	// hist observes successful lease durations; with prefixesDone it yields
	// the per-prefix rate the adaptive sizer uses.
	hist telemetry.Histogram
	// Clock-offset estimate (worker clock − coordinator clock) from lease
	// round trips; the sample with the least transport overhead wins.
	clockSet   bool
	clockOffNS int64
	clockRTTNS int64
}

func (s *session) spawnedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spawned
}

// addWorkerLocked admits addr into the rotation, spawning its lease loop.
// Safe to call for a worker that is already running (no-op) or one that left
// and came back (respawn, unless retired).
func (s *session) addWorkerLocked(addr string, initial bool) {
	if s.runCtx != nil && s.runCtx.Err() != nil {
		return
	}
	w := s.workers[addr]
	if w == nil {
		w = &sessWorker{addr: addr}
		s.workers[addr] = w
		s.spawned++
		w.lane = s.spawned // stable 1-based timeline row; lane 0 is the coordinator
		if !initial {
			s.joined.Add(1)
			s.co.cfg.Stats.WorkersJoined.Add(1)
			s.co.cfg.Logger.Printf("dist: worker %s joined mid-run", addr)
		}
	}
	if w.retired || w.running {
		w.leaving = false
		return
	}
	if w.leaving { // rejoin after leaving
		w.leaving = false
		s.joined.Add(1)
		s.co.cfg.Stats.WorkersJoined.Add(1)
		s.co.cfg.Logger.Printf("dist: worker %s rejoined", addr)
	}
	w.running = true
	s.activeLoops++
	s.wg.Add(1)
	go s.runWorker(w)
}

// markLeavingLocked retires addr from new work: its in-flight leases become
// immediately stealable and its loop exits once idle. In-flight transport
// calls are NOT canceled — a leaver that still answers gets its partial
// merged (or rejected as a duplicate if someone else got there first).
func (s *session) markLeavingLocked(w *sessWorker) {
	if w.leaving || !w.running {
		return
	}
	w.leaving = true
	s.left.Add(1)
	s.co.cfg.Stats.WorkersLeft.Add(1)
	s.co.cfg.Logger.Printf("dist: worker %s left the registry; draining", w.addr)
	s.cond.Broadcast()
}

// membershipLoop reconciles the session's rotation with the registry: new
// registrations spawn loops, missing workers are marked leaving. It doubles
// as the periodic wake-up that makes time-based steal eligibility fire.
func (s *session) membershipLoop() {
	defer s.wg.Done()
	interval := s.co.cfg.MembershipInterval
	if sd := s.co.cfg.StealDelay / 2; sd < interval {
		interval = sd
	}
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.runCtx.Done():
			return
		case <-t.C:
		case <-s.poke:
		}
		live := s.co.reg.workers()
		liveSet := make(map[string]bool, len(live))
		s.mu.Lock()
		for _, addr := range live {
			liveSet[addr] = true
			s.addWorkerLocked(addr, false)
		}
		for addr, w := range s.workers {
			if w.running && !w.leaving && !liveSet[addr] {
				s.markLeavingLocked(w)
			}
		}
		s.cond.Broadcast() // age-based steal eligibility advances with time
		s.mu.Unlock()
	}
}

// flusher streams the merged checkpoint to the durable store on a cadence.
func (s *session) flusher(store Store, runID string, interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.runCtx.Done():
			return
		case <-t.C:
		}
		s.flushStore(store, runID)
	}
}

// flushStore snapshots the merged checkpoint under the lock and writes it
// outside it. Flush failures are logged, not fatal: the in-memory run is
// still authoritative and the next flush retries.
func (s *session) flushStore(store Store, runID string) {
	s.mu.Lock()
	snap := s.ck.Clone()
	s.mu.Unlock()
	end := s.tel.Span("store-flush")
	fsp := s.trc.Start(s.root, "store-flush")
	err := store.SaveCheckpoint(runID, snap)
	fsp.End()
	end()
	if err != nil {
		s.co.cfg.Logger.Printf("dist: flushing checkpoint for run %s: %v", runID, err)
		return
	}
	s.co.cfg.Stats.StoreFlushes.Add(1)
}

// emit reports one completed (or failed) lease to the configured sinks.
func (s *session) emit(addr string, l *lease, t0 time.Time, part *hsf.Checkpoint, err error) {
	if s.tel == nil && s.co.cfg.OnLease == nil {
		return
	}
	ev := telemetry.LeaseEvent{
		Worker:   addr,
		Batch:    l.id,
		Prefixes: len(l.prefixes),
		StartMs:  float64(t0.Sub(s.start)) / 1e6,
		DurMs:    float64(time.Since(t0)) / 1e6,
		Stolen:   l.isSteal,
	}
	if part != nil {
		ev.Paths = part.PathsSimulated
		ev.Partial = err == nil && len(part.Prefixes) < len(l.prefixes)
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.tel.Lease(ev)
	if cb := s.co.cfg.OnLease; cb != nil {
		cb(ev)
	}
}

// errAllDone is the private cancellation cause distinguishing "every prefix
// merged" from a real failure.
var errAllDone = errors.New("dist: all prefixes merged")

func (s *session) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.firstErr != nil {
		return s.firstErr
	}
	if s.unmerged > 0 {
		// The run context must have been canceled externally.
		if cause := context.Cause(s.runCtx); cause != nil && !errors.Is(cause, errAllDone) {
			return cause
		}
		return fmt.Errorf("dist: run ended with %d prefixes unmerged", s.unmerged)
	}
	return nil
}

func (s *session) failLocked(err error) {
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.cancel(err) // AfterFunc broadcast runs in its own goroutine
}

// runWorker is one worker's lease loop: take (or steal) a lease, execute it
// under the lease deadline, resolve the reply. It exits when the run is
// over, the worker is retired, or the worker is leaving and the pool has no
// work for it.
func (s *session) runWorker(w *sessWorker) {
	cfg := &s.co.cfg
	defer s.wg.Done()
	defer s.workerExit(w)
	for {
		l := s.nextLease(w)
		if l == nil {
			return
		}
		if cfg.onLease != nil {
			cfg.onLease(w.addr, l.id)
		}
		s.granted.Add(1)
		cfg.Stats.LeasesGranted.Add(1)
		cfg.Stats.InFlightLeases.Add(1)
		t0 := time.Now()
		lctx, lcancel := context.WithTimeout(s.runCtx, cfg.LeaseTimeout+leaseGrace(cfg.LeaseTimeout))
		// The lease span context rides to the worker (traceparent over HTTP,
		// the context itself over loopback); the metadata carrier brings the
		// worker's execution window back for clock-offset estimation.
		lctx = trace.NewContext(lctx, s.trc, l.sc)
		meta := &leaseMeta{}
		lctx = withLeaseMeta(lctx, meta)
		part, err := cfg.Transport.Run(lctx, w.addr, &RunRequest{
			Job:          *s.job,
			PlanHash:     s.planHash,
			SplitLevels:  s.split,
			Prefixes:     l.prefixes,
			LeaseMillis:  int(cfg.LeaseTimeout / time.Millisecond),
			AllowPartial: true,
		})
		lcancel()
		received := time.Now()
		cfg.Stats.InFlightLeases.Add(-1)
		if s.trc != nil {
			s.mu.Lock()
			off := w.observeClock(t0, received, meta)
			s.mu.Unlock()
			s.recordWorkerExec(w, l, meta, off)
		}
		s.emit(w.addr, l, t0, part, err)
		s.resolve(w, l, part, err, received.Sub(t0))
	}
}

// workerExit runs when a worker loop ends. If the whole fleet is gone with
// work outstanding, the run fails now (JoinGrace 0) or after a grace window
// in which a new worker may still join and pick the run back up.
func (s *session) workerExit(w *sessWorker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.running = false
	s.activeLoops--
	if s.activeLoops > 0 || s.unmerged == 0 || s.done || s.firstErr != nil {
		return
	}
	if context.Cause(s.runCtx) != nil {
		return
	}
	fail := func() {
		s.failLocked(fmt.Errorf("%w: all workers retired or left with %d prefixes unmerged",
			ErrNoWorkers, s.unmerged))
	}
	grace := s.co.cfg.JoinGrace
	if grace <= 0 {
		fail()
		return
	}
	time.AfterFunc(grace, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.activeLoops == 0 && s.unmerged > 0 && !s.done && s.firstErr == nil &&
			context.Cause(s.runCtx) == nil {
			fail()
		}
	})
}
