package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hsfsim/internal/hsf"
	"hsfsim/internal/telemetry"
)

// Stats are process-wide counters a coordinator updates; a daemon exposes
// them through expvar. All fields are monotonic except InFlightLeases.
type Stats struct {
	Runs              atomic.Int64
	LeasesGranted     atomic.Int64
	LeasesReassigned  atomic.Int64
	WorkersRetired    atomic.Int64
	PrefixesMerged    atomic.Int64
	PathsSimulated    atomic.Int64
	InFlightLeases    atomic.Int64
	PartialsDuplicate atomic.Int64
}

// Config tunes a Coordinator; the zero value (plus a Transport) is usable.
type Config struct {
	// Transport executes leases (required).
	Transport Transport
	// LeaseTimeout bounds one lease; a worker that has not answered by then
	// is considered stalled and its batch is reassigned. 0: 2 minutes.
	LeaseTimeout time.Duration
	// MaxStrikes is the number of consecutive failed leases after which a
	// worker is retired from the run. 0: 3.
	MaxStrikes int
	// TasksPerWorker sizes the split: the prefix space is expanded until it
	// has at least TasksPerWorker×workers tasks, then grouped into about
	// 4×workers batches so reassignment quanta stay small. 0: 16.
	TasksPerWorker int
	// BatchSize overrides the automatic batch sizing (0: automatic).
	BatchSize int
	// WorkerTTL is the dynamic-registration heartbeat TTL. 0: 1 minute.
	WorkerTTL time.Duration
	// Logger receives lease-level events (nil: log.Default()).
	Logger *log.Logger
	// Stats, when non-nil, receives counter updates. Every coordinator
	// should get its own Stats instance (a daemon scopes one per service and
	// aggregates for export); New allocates a private one when nil, so
	// coordinators never share counters by accident.
	Stats *Stats
	// OnLease, when non-nil, receives one event per completed (or failed)
	// lease: worker, batch, duration, merged path count. It is called from
	// worker lease loops, so it must be safe for concurrent use.
	OnLease func(telemetry.LeaseEvent)

	// onLease, when non-nil, runs just before each lease is dispatched
	// (worker address, batch id). Tests use it to kill workers mid-run.
	onLease func(worker string, batch int)
}

// Coordinator shards prefix-task batches across a worker fleet.
type Coordinator struct {
	cfg Config
	reg *registry
}

// New returns a Coordinator over the given configuration.
func New(cfg Config) *Coordinator {
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = 2 * time.Minute
	}
	if cfg.MaxStrikes <= 0 {
		cfg.MaxStrikes = 3
	}
	if cfg.TasksPerWorker <= 0 {
		cfg.TasksPerWorker = 16
	}
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	if cfg.Stats == nil {
		cfg.Stats = &Stats{}
	}
	return &Coordinator{cfg: cfg, reg: newRegistry(cfg.WorkerTTL)}
}

// AddWorker pins a static worker (never expires).
func (c *Coordinator) AddWorker(addr string) { c.reg.addStatic(addr) }

// Register records a dynamic worker heartbeat and returns the fleet size.
func (c *Coordinator) Register(addr string) int {
	c.reg.register(addr)
	return len(c.reg.workers())
}

// RemoveWorker drops a worker from the fleet.
func (c *Coordinator) RemoveWorker(addr string) { c.reg.remove(addr) }

// Workers returns the live fleet.
func (c *Coordinator) Workers() []string { return c.reg.workers() }

// TTL returns the dynamic-registration heartbeat TTL.
func (c *Coordinator) TTL() time.Duration { return c.reg.ttl }

// batch is the lease unit: a contiguous slice of the prefix enumeration.
// A batch is pending, leased to exactly one worker, or merged — never two of
// those at once; requeueing happens only after its lease has returned.
type batch struct {
	id       int
	prefixes [][]int
	done     bool // guarded by session.mu; set once when merged
}

// RunOptions carries per-run I/O: crash recovery in and out, plus optional
// observability sinks.
type RunOptions struct {
	// Resume seeds the merged state from a prior checkpoint: already-merged
	// prefixes are never leased again.
	Resume *hsf.Checkpoint
	// CheckpointWriter receives the merged state if the run stops
	// prematurely, in the exact format single-process runs write.
	CheckpointWriter io.Writer
	// Telemetry, when non-nil, records the run's lease timeline (one
	// LeaseEvent per lease, lease-duration histogram) and final totals.
	Telemetry *telemetry.Recorder
	// Progress, when non-nil, is advanced as batches merge, so callers can
	// render a live paths-done/total ticker for distributed runs too.
	Progress *telemetry.Tracker
}

// Run executes the job across the current fleet and returns the merged
// result. It is the coordinator side of the protocol: enumerate once, lease
// batches, merge partials, reassign on failure.
func (c *Coordinator) Run(ctx context.Context, job *Job, opts RunOptions) (*Result, error) {
	plan, err := job.BuildPlan()
	if err != nil {
		return nil, err
	}
	workers := c.reg.workers()
	if len(workers) == 0 {
		return nil, ErrNoWorkers
	}
	c.cfg.Stats.Runs.Add(1)

	planHash := hsf.PlanHash(plan)
	m := hsf.AccumulatorLen(plan, job.MaxAmplitudes)

	splitLevels := 0
	if opts.Resume != nil {
		splitLevels = opts.Resume.SplitLevels
	} else {
		splitLevels = hsf.ChooseSplitLevels(plan, c.cfg.TasksPerWorker*len(workers))
	}
	prefixes := hsf.EnumeratePrefixes(plan, splitLevels)

	ck := &hsf.Checkpoint{
		PlanHash:    planHash,
		NumQubits:   plan.NumQubits,
		M:           m,
		SplitLevels: splitLevels,
		Acc:         make([]complex128, m),
	}
	merged := make(map[string]bool, len(prefixes))
	if opts.Resume != nil {
		if err := ck.Merge(opts.Resume); err != nil {
			return nil, fmt.Errorf("dist: resume checkpoint rejected: %w", err)
		}
		for _, p := range opts.Resume.Prefixes {
			merged[hsf.PrefixKey(p)] = true
		}
	}
	var pending [][]int
	for _, p := range prefixes {
		if !merged[hsf.PrefixKey(p)] {
			pending = append(pending, p)
		}
	}

	batches := c.makeBatches(pending, len(workers))
	np, _ := plan.NumPaths()
	npClamped := int64(np)
	if np > 1<<63-1 {
		npClamped = 1<<63 - 1
	}
	resumedPaths := ck.PathsSimulated
	opts.Progress.Start(npClamped, resumedPaths, nil)
	start := time.Now()
	finish := func() {
		opts.Telemetry.FinishRun(telemetry.RunTotals{
			TotalPaths: npClamped,
			Log2Paths:  plan.Log2Paths(),
			Simulated:  ck.PathsSimulated,
			Resumed:    resumedPaths,
			Workers:    len(workers),
			Gomaxprocs: runtime.GOMAXPROCS(0),
			Elapsed:    time.Since(start),
		})
	}
	result := func(reassigned int64) *Result {
		return &Result{
			Amplitudes:      ck.Acc,
			NumPaths:        np,
			Log2Paths:       plan.Log2Paths(),
			PathsSimulated:  ck.PathsSimulated,
			NumCuts:         len(plan.Cuts),
			NumBlocks:       plan.NumBlocks(),
			NumSeparateCuts: plan.NumSeparateCuts(),
			SplitLevels:     splitLevels,
			Batches:         len(batches),
			Workers:         len(workers),
			Reassignments:   reassigned,
		}
	}
	if len(batches) == 0 { // everything already checkpointed
		finish()
		return result(0), nil
	}

	s := &session{
		co:        c,
		job:       job,
		planHash:  planHash,
		split:     splitLevels,
		ck:        ck,
		queue:     make(chan *batch, len(batches)),
		remaining: len(batches),
		tel:       opts.Telemetry,
		progress:  opts.Progress,
		start:     start,
	}
	s.runCtx, s.cancel = context.WithCancelCause(ctx)
	defer s.cancel(nil)
	for _, b := range batches {
		s.queue <- b
	}

	var wg sync.WaitGroup
	s.active.Store(int64(len(workers)))
	for _, w := range workers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			s.runWorker(addr)
		}(w)
	}
	wg.Wait()

	finish()
	err = s.err()
	if err != nil {
		if opts.CheckpointWriter != nil {
			if werr := hsf.WriteCheckpoint(opts.CheckpointWriter, ck); werr != nil {
				return nil, errors.Join(err, fmt.Errorf("dist: writing checkpoint: %w", werr))
			}
		}
		return nil, err
	}
	return result(s.reassigned.Load()), nil
}

// makeBatches chunks the pending prefixes into about 4×workers batches (or
// fixed BatchSize chunks) so a lost lease forfeits little work.
func (c *Coordinator) makeBatches(pending [][]int, workers int) []*batch {
	if len(pending) == 0 {
		return nil
	}
	size := c.cfg.BatchSize
	if size <= 0 {
		size = (len(pending) + 4*workers - 1) / (4 * workers)
		if size < 1 {
			size = 1
		}
	}
	var out []*batch
	for start := 0; start < len(pending); start += size {
		end := start + size
		if end > len(pending) {
			end = len(pending)
		}
		out = append(out, &batch{id: len(out), prefixes: pending[start:end]})
	}
	return out
}

// session is the mutable state of one Run: the lease queue, the merged
// checkpoint, and failure bookkeeping shared by the per-worker loops.
type session struct {
	co       *Coordinator
	job      *Job
	planHash uint64
	split    int

	mu        sync.Mutex // guards ck, batch.done, remaining, firstErr
	ck        *hsf.Checkpoint
	remaining int
	firstErr  error

	queue      chan *batch
	runCtx     context.Context
	cancel     context.CancelCauseFunc
	active     atomic.Int64 // workers still in rotation
	reassigned atomic.Int64

	tel      *telemetry.Recorder
	progress *telemetry.Tracker
	start    time.Time
}

// lease reports one completed (or failed) lease to the configured sinks:
// the run recorder's lease timeline and the coordinator's OnLease callback.
func (s *session) lease(addr string, b *batch, t0 time.Time, paths int64, err error) {
	if s.tel == nil && s.co.cfg.OnLease == nil {
		return
	}
	ev := telemetry.LeaseEvent{
		Worker:   addr,
		Batch:    b.id,
		Prefixes: len(b.prefixes),
		StartMs:  float64(t0.Sub(s.start)) / 1e6,
		DurMs:    float64(time.Since(t0)) / 1e6,
		Paths:    paths,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.tel.Lease(ev)
	if cb := s.co.cfg.OnLease; cb != nil {
		cb(ev)
	}
}

// errAllDone is the private cancellation cause distinguishing "every batch
// merged" from a real failure.
var errAllDone = errors.New("dist: all batches merged")

func (s *session) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.firstErr != nil {
		return s.firstErr
	}
	if s.remaining > 0 {
		// The run context must have been canceled externally.
		if cause := context.Cause(s.runCtx); cause != nil && !errors.Is(cause, errAllDone) {
			return cause
		}
		return fmt.Errorf("dist: run ended with %d batches unmerged", s.remaining)
	}
	return nil
}

func (s *session) fail(err error) {
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mu.Unlock()
	s.cancel(err)
}

// runWorker is one worker's lease loop: take a batch, execute it under the
// lease deadline, merge or requeue. It exits when the run is over or the
// worker is retired.
func (s *session) runWorker(addr string) {
	cfg := &s.co.cfg
	strikes := 0
	defer func() {
		if n := s.active.Add(-1); n == 0 {
			// Last worker leaving with work outstanding fails the run.
			s.mu.Lock()
			left := s.remaining
			s.mu.Unlock()
			if left > 0 && context.Cause(s.runCtx) == nil {
				s.fail(fmt.Errorf("%w: all workers retired with %d batches unmerged", ErrNoWorkers, left))
			}
		}
	}()
	for {
		var b *batch
		select {
		case <-s.runCtx.Done():
			return
		case b = <-s.queue:
		}

		if cfg.onLease != nil {
			cfg.onLease(addr, b.id)
		}
		cfg.Stats.LeasesGranted.Add(1)
		cfg.Stats.InFlightLeases.Add(1)
		t0 := time.Now()
		lctx, lcancel := context.WithTimeout(s.runCtx, cfg.LeaseTimeout)
		part, err := cfg.Transport.Run(lctx, addr, &RunRequest{
			Job:         *s.job,
			PlanHash:    s.planHash,
			SplitLevels: s.split,
			Prefixes:    b.prefixes,
			LeaseMillis: int(cfg.LeaseTimeout / time.Millisecond),
		})
		lcancel()
		cfg.Stats.InFlightLeases.Add(-1)
		var partPaths int64
		if part != nil {
			partPaths = part.PathsSimulated
		}
		s.lease(addr, b, t0, partPaths, err)

		if err != nil {
			// The whole run is over or canceled: put the batch back for the
			// checkpoint's sake and leave quietly.
			if context.Cause(s.runCtx) != nil {
				s.queue <- b
				return
			}
			if IsPermanent(err) {
				s.fail(err)
				return
			}
			strikes++
			s.reassigned.Add(1)
			cfg.Stats.LeasesReassigned.Add(1)
			cfg.Logger.Printf("dist: lease batch %d on %s failed (strike %d/%d): %v",
				b.id, addr, strikes, cfg.MaxStrikes, err)
			s.queue <- b
			if strikes >= cfg.MaxStrikes {
				cfg.Stats.WorkersRetired.Add(1)
				cfg.Logger.Printf("dist: retiring worker %s after %d consecutive failures", addr, strikes)
				return
			}
			continue
		}
		strikes = 0

		if err := s.merge(b, part); err != nil {
			s.fail(err)
			return
		}
	}
}

// merge folds one partial into the session state. At-most-once is enforced
// at two levels: a batch already marked done is dropped whole (duplicate
// delivery of the same lease), and hsf.Checkpoint.Merge's prefix-key guard
// rejects any cross-batch overlap as corruption instead of double-counting.
func (s *session) merge(b *batch, part *hsf.Checkpoint) error {
	cfg := &s.co.cfg
	// A well-behaved worker returns exactly the leased prefixes.
	if len(part.Prefixes) != len(b.prefixes) {
		return fmt.Errorf("dist: batch %d: worker returned %d prefixes, leased %d",
			b.id, len(part.Prefixes), len(b.prefixes))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b.done {
		cfg.Stats.PartialsDuplicate.Add(1)
		cfg.Logger.Printf("dist: dropping duplicate partial for batch %d", b.id)
		return nil
	}
	if err := s.ck.Merge(part); err != nil {
		return fmt.Errorf("dist: batch %d: %w", b.id, err)
	}
	b.done = true
	cfg.Stats.PrefixesMerged.Add(int64(len(part.Prefixes)))
	cfg.Stats.PathsSimulated.Add(part.PathsSimulated)
	s.progress.Add(part.PathsSimulated)
	s.remaining--
	if s.remaining == 0 {
		s.cancel(errAllDone)
	}
	return nil
}
