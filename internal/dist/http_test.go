// Integration tests of the dist protocol over real HTTP: hsfsimd handler
// trees behind httptest listeners, driven by a coordinator with the
// production HTTPTransport. External test package so it can import
// internal/server (which itself imports dist).
//
// This file carries the PR's acceptance criterion: a distributed run over
// two workers, one killed mid-run, must reassign the dead worker's leases
// and still reproduce the single-process amplitudes to 1e-12.
package dist_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"math/cmplx"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hsfsim/internal/dist"
	"hsfsim/internal/hsf"
	"hsfsim/internal/server"
)

func integQASM(n, edges int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	fmt.Fprintf(&b, "qreg q[%d];\n", n)
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "h q[%d];\n", q)
	}
	for i := 0; i < edges; i++ {
		a := rng.Intn(n)
		c := (a + 1 + rng.Intn(n-1)) % n
		fmt.Fprintf(&b, "rzz(%.6f) q[%d],q[%d];\n", rng.Float64()*2, a, c)
	}
	for q := 0; q < n; q++ {
		fmt.Fprintf(&b, "rx(%.6f) q[%d];\n", rng.Float64(), q)
	}
	return b.String()
}

func discard() *log.Logger { return log.New(io.Discard, "", 0) }

// mustNew builds a coordinator from cfg, failing the test on config errors.
func mustNew(t *testing.T, cfg dist.Config) *dist.Coordinator {
	t.Helper()
	co, err := dist.New(cfg)
	if err != nil {
		t.Fatalf("dist.New: %v", err)
	}
	return co
}

func workerAddr(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

func newWorkerServer() *httptest.Server {
	return httptest.NewServer(server.NewWithConfig(server.Config{Logger: discard()}))
}

// killableWorker is an hsfsimd handler tree that dies after completing
// exactly one lease: every later /dist/run connection is dropped without a
// response — exactly what a worker process dying under the coordinator looks
// like on the wire. Tying the death to the lease count (instead of a timer
// or a polling goroutine) keeps the kill deterministic however fast the
// engine drains the queue.
type killableWorker struct {
	srv    *httptest.Server
	served atomic.Int64
}

func newKillableWorker() *killableWorker {
	kw := &killableWorker{}
	inner := server.NewWithConfig(server.Config{Logger: discard()})
	kw.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/dist/run" {
			if kw.served.Add(1) > 1 {
				hj, ok := w.(http.Hijacker)
				if !ok {
					panic("httptest response is not hijackable")
				}
				conn, _, err := hj.Hijack()
				if err == nil {
					conn.Close()
				}
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	return kw
}

func singleProcessAmps(t *testing.T, job *dist.Job) []complex128 {
	t.Helper()
	plan, err := job.BuildPlan()
	if err != nil {
		t.Fatal(err)
	}
	res, err := hsf.Run(plan, hsf.Options{MaxAmplitudes: job.MaxAmplitudes})
	if err != nil {
		t.Fatal(err)
	}
	return res.Amplitudes
}

func matchAmps(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("amplitude count %d != %d", len(got), len(want))
	}
	for i := range want {
		if d := cmplx.Abs(got[i] - want[i]); d > tol {
			t.Fatalf("amplitude %d differs by %g (> %g)", i, d, tol)
		}
	}
}

// TestHTTPWorkerKilledMidRun is the acceptance test: two hsfsimd workers over
// real HTTP, one killed after its first completed lease. The coordinator
// must reassign the dead worker's leases to the survivor and the merged
// amplitudes must equal the single-process result to 1e-12.
func TestHTTPWorkerKilledMidRun(t *testing.T) {
	job := &dist.Job{QASM: integQASM(8, 10, 21), Method: "joint", CutPos: 3}

	healthy := newWorkerServer()
	defer healthy.Close()
	doomed := newKillableWorker()
	defer doomed.srv.Close()

	var stats dist.Stats
	co := mustNew(t, dist.Config{
		Transport:    &dist.HTTPTransport{},
		Logger:       discard(),
		Stats:        &stats,
		BatchSize:    1, // many small leases so the kill lands mid-run
		LeaseTimeout: 30 * time.Second,
	})
	co.AddWorker(workerAddr(healthy))
	co.AddWorker(workerAddr(doomed.srv))

	// The doomed worker kills itself when offered its second lease, so that
	// lease fails while assigned and must be reassigned to the survivor.
	res, err := co.Run(context.Background(), job, dist.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 {
		t.Fatalf("run started with %d workers, want 2", res.Workers)
	}
	if res.Reassignments == 0 {
		t.Fatal("expected the dead worker's leases to be reassigned")
	}
	if stats.LeasesReassigned.Load() != res.Reassignments {
		t.Fatalf("stats reassignments %d != result %d", stats.LeasesReassigned.Load(), res.Reassignments)
	}
	// Retirement (3 strikes) is timing-dependent here — the survivor may
	// drain the queue first; the loopback test pins it deterministically.
	matchAmps(t, res.Amplitudes, singleProcessAmps(t, job), 1e-12)
}

// TestHTTPDistributedMatchesSingleProcess is the no-fault baseline over real
// HTTP sockets for both cutting methods.
func TestHTTPDistributedMatchesSingleProcess(t *testing.T) {
	w1 := newWorkerServer()
	defer w1.Close()
	w2 := newWorkerServer()
	defer w2.Close()

	for _, method := range []string{"standard", "joint"} {
		t.Run(method, func(t *testing.T) {
			job := &dist.Job{QASM: integQASM(8, 8, 22), Method: method, CutPos: 3}
			co := mustNew(t, dist.Config{Transport: &dist.HTTPTransport{}, Logger: discard()})
			co.AddWorker(workerAddr(w1))
			co.AddWorker(workerAddr(w2))
			res, err := co.Run(context.Background(), job, dist.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			matchAmps(t, res.Amplitudes, singleProcessAmps(t, job), 1e-12)
		})
	}
}

// TestHTTPAllWorkersDeadResumes loses the whole fleet mid-run, checks the
// failure checkpoint, and finishes the job on a fresh fleet from it.
func TestHTTPAllWorkersDeadResumes(t *testing.T) {
	job := &dist.Job{QASM: integQASM(8, 10, 23), Method: "joint", CutPos: 3}

	doomed := newKillableWorker()
	defer doomed.srv.Close()
	co := mustNew(t, dist.Config{
		Transport:    &dist.HTTPTransport{},
		Logger:       discard(),
		BatchSize:    1,
		LeaseTimeout: 30 * time.Second,
	})
	co.AddWorker(workerAddr(doomed.srv))

	// The only worker dies after its first completed lease, so the run fails
	// with that lease's results already merged.
	var ckBuf bytes.Buffer
	_, err := co.Run(context.Background(), job, dist.RunOptions{CheckpointWriter: &ckBuf})
	if !errors.Is(err, dist.ErrNoWorkers) {
		t.Fatalf("got %v, want ErrNoWorkers", err)
	}
	ck, err := hsf.ReadCheckpoint(&ckBuf)
	if err != nil {
		t.Fatalf("failure checkpoint unreadable: %v", err)
	}
	if len(ck.Prefixes) == 0 {
		t.Fatal("failure checkpoint is empty; at least one lease completed")
	}

	fresh := newWorkerServer()
	defer fresh.Close()
	co2 := mustNew(t, dist.Config{Transport: &dist.HTTPTransport{}, Logger: discard()})
	co2.AddWorker(workerAddr(fresh))
	res, err := co2.Run(context.Background(), job, dist.RunOptions{Resume: ck})
	if err != nil {
		t.Fatal(err)
	}
	matchAmps(t, res.Amplitudes, singleProcessAmps(t, job), 1e-12)
}
