// Chaos suite: seeded fault injection over the full elastic runtime. The
// centerpiece kills half the worker fleet AND the coordinator mid-run,
// registers replacements, and has a fresh coordinator take the run over from
// the durable store — the final amplitudes must match a single-process run to
// 1e-12 with exactly the right number of paths (nothing lost, nothing
// double-merged).
//
// Seeds are logged on every run; set CHAOS_SEED to reproduce or explore.
package dist

import (
	"context"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// chaosSeed returns CHAOS_SEED if set, else a fixed default, and logs it so
// any failure is reproducible.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(42)
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", v, err)
		}
		seed = n
	}
	t.Logf("chaos seed %d (set CHAOS_SEED to override)", seed)
	return seed
}

// chaosJob is large enough (64 prefix tasks) that the injected failures land
// mid-run, and small enough to stay fast.
func chaosJob() *Job {
	return &Job{QASM: testQASM(10, 32, 7), Method: "joint", CutPos: 5}
}

// TestChaosHalfFleetAndCoordinatorKilled is the PR's acceptance criterion.
// Phase 1: four workers under a seeded fault mix (dropped replies, stale
// duplicate deliveries, random delays); two workers are killed after a few
// leases, two replacements register mid-run, and the coordinator itself is
// killed mid-run after durable flushes. Phase 2: a brand-new coordinator
// with a brand-new fleet takes the run over purely from the store.
func TestChaosHalfFleetAndCoordinatorKilled(t *testing.T) {
	seed := chaosSeed(t)
	job := chaosJob()
	st, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	lb := NewLoopback()
	for _, w := range []string{"w0", "w1", "w2", "w3", "w4", "w5"} {
		lb.AddWorker(w, ExecOptions{})
	}
	chaos := NewChaos(lb, ChaosConfig{
		Seed:           seed,
		DropReply:      0.10,
		DuplicateReply: 0.10,
		MaxDelay:       2 * time.Millisecond,
		// w0 dies on its own once it has held a lease; w1 is killed
		// explicitly from the lease hook below so the half-fleet kill does
		// not depend on how the greedy pool spreads the first leases.
		KillAfterLeases: map[string]int{"w0": 1},
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stats Stats
	var co *Coordinator
	var leases atomic.Int64
	co = mustNew(t, Config{
		Transport:          chaos,
		Logger:             quietLogger(),
		Stats:              &stats,
		BatchSize:          2,
		MembershipInterval: 5 * time.Millisecond,
		onLease: func(worker string, batch int) {
			switch leases.Add(1) {
			case 8: // replacements for the doomed half of the fleet
				co.Register("w4")
				co.Register("w5")
			case 10:
				chaos.Kill("w1") // the second half-fleet casualty, deterministic
			case 20: // the coordinator process "dies"
				cancel()
			}
		},
	})
	for _, w := range []string{"w0", "w1", "w2", "w3"} {
		co.AddWorker(w)
	}
	_, err = co.Run(ctx, job, RunOptions{Store: st, RunID: "chaos", FlushInterval: time.Millisecond})
	if err == nil {
		t.Fatal("phase 1 survived the coordinator kill")
	}
	t.Logf("phase 1: %v (leases=%d dropped=%d duplicated=%d kills=%d joined=%d)",
		err, leases.Load(), chaos.Dropped, chaos.Duplicated, chaos.Kills, stats.WorkersJoined.Load())
	if chaos.Kills == 0 {
		t.Fatal("no worker was ever killed; the chaos mix did not engage")
	}

	// Handover: any node holding the store can finish the run with a fleet
	// the first coordinator never knew.
	lb2 := NewLoopback()
	lb2.AddWorker("n0", ExecOptions{})
	lb2.AddWorker("n1", ExecOptions{})
	co2 := mustNew(t, Config{Transport: lb2, Logger: quietLogger()})
	co2.AddWorker("n0")
	co2.AddWorker("n1")
	res, err := co2.Takeover(context.Background(), st, "chaos", RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.PathsSimulated, expectedPaths(t, job); got != want {
		t.Fatalf("PathsSimulated = %d, want exactly %d (lost or duplicated paths across the handover)", got, want)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)
}

// TestChaosDropsAndDuplicatesConverge hammers the exactly-once machinery
// without killing anyone: a quarter of replies are dropped after execution
// (lost-ack → the lease re-runs) and a fifth are replaced by stale replays of
// earlier replies. The run must still converge to the exact path count and
// amplitudes.
func TestChaosDropsAndDuplicatesConverge(t *testing.T) {
	seed := chaosSeed(t)
	job := chaosJob()
	lb := NewLoopback()
	for _, w := range []string{"w0", "w1", "w2"} {
		lb.AddWorker(w, ExecOptions{})
	}
	chaos := NewChaos(lb, ChaosConfig{
		Seed:           seed,
		DropReply:      0.25,
		DuplicateReply: 0.20,
		MaxDelay:       time.Millisecond,
	})
	var stats Stats
	co := mustNew(t, Config{
		Transport:          chaos,
		Logger:             quietLogger(),
		Stats:              &stats,
		BatchSize:          1,
		MaxStrikes:         25, // drops are chaos, not worker faults: don't retire the fleet
		MembershipInterval: 5 * time.Millisecond,
	})
	for _, w := range []string{"w0", "w1", "w2"} {
		co.AddWorker(w)
	}
	res, err := co.Run(context.Background(), job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dropped=%d duplicated=%d reassigned=%d dupPartials=%d",
		chaos.Dropped, chaos.Duplicated, res.Reassignments, stats.PartialsDuplicate.Load())
	if chaos.Dropped == 0 && chaos.Duplicated == 0 {
		t.Fatal("the chaos mix injected nothing; the test is vacuous")
	}
	if got, want := res.PathsSimulated, expectedPaths(t, job); got != want {
		t.Fatalf("PathsSimulated = %d, want exactly %d", got, want)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)
}
