// Worker-side registration: a worker announces itself to a coordinator and
// keeps re-registering so its registry entry never expires.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"
)

// RegisterWorker announces addr to the coordinator and returns its reply.
// client may be nil (http.DefaultClient).
func RegisterWorker(ctx context.Context, client *http.Client, coordinator, addr string) (*RegisterResponse, error) {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(RegisterRequest{Addr: addr})
	if err != nil {
		return nil, fmt.Errorf("dist: encoding registration: %w", err)
	}
	url := coordinator
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/dist/register"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("dist: building registration: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator %s: %w", coordinator, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("dist: coordinator %s: status %d: %s",
			coordinator, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var reg RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		return nil, fmt.Errorf("dist: decoding registration reply: %w", err)
	}
	return &reg, nil
}

// Heartbeat registers addr with the coordinator and re-registers at a third
// of the advertised TTL until ctx is canceled. Registration failures are
// logged and retried: a coordinator restart only drops the worker until the
// next beat.
func Heartbeat(ctx context.Context, client *http.Client, coordinator, addr string, logger *log.Logger) {
	if logger == nil {
		logger = log.Default()
	}
	interval := 5 * time.Second // retry cadence until the coordinator answers
	registered := false
	for {
		reg, err := RegisterWorker(ctx, client, coordinator, addr)
		switch {
		case err == nil:
			if !registered {
				logger.Printf("dist: registered with %s as %s (%d workers, ttl %dms)",
					coordinator, addr, reg.Workers, reg.TTLMillis)
			}
			registered = true
			if ttl := time.Duration(reg.TTLMillis) * time.Millisecond; ttl > 0 {
				interval = ttl / 3
			}
		case ctx.Err() != nil:
			return
		default:
			registered = false
			logger.Printf("dist: registering with %s: %v (retrying in %v)", coordinator, err, interval)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}
