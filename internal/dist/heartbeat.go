// Worker-side registration: a worker announces itself to a coordinator and
// keeps re-registering so its registry entry never expires.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"
)

// RegisterWorker announces addr to the coordinator and returns its reply.
// client may be nil (http.DefaultClient).
func RegisterWorker(ctx context.Context, client *http.Client, coordinator, addr string) (*RegisterResponse, error) {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(RegisterRequest{Addr: addr})
	if err != nil {
		return nil, fmt.Errorf("dist: encoding registration: %w", err)
	}
	url := coordinator
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/dist/register"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("dist: building registration: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator %s: %w", coordinator, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("dist: coordinator %s: status %d: %s",
			coordinator, resp.StatusCode, bytes.TrimSpace(msg))
	}
	var reg RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		return nil, fmt.Errorf("dist: decoding registration reply: %w", err)
	}
	return &reg, nil
}

// HeartbeatOptions tunes the registration loop.
type HeartbeatOptions struct {
	// RejoinInterval is the retry cadence while the coordinator is
	// unreachable (a restarting coordinator picks the worker back up this
	// fast). 0: 5 seconds.
	RejoinInterval time.Duration
	Logger         *log.Logger
}

// Heartbeat registers addr with the coordinator and re-registers at the
// coordinator's advertised cadence (its heartbeat interval, falling back to
// a third of the TTL) until ctx is canceled. Registration failures are
// logged and retried every RejoinInterval: a coordinator restart only drops
// the worker until the next beat.
func Heartbeat(ctx context.Context, client *http.Client, coordinator, addr string, opts HeartbeatOptions) {
	logger := opts.Logger
	if logger == nil {
		logger = log.Default()
	}
	rejoin := opts.RejoinInterval
	if rejoin <= 0 {
		rejoin = 5 * time.Second
	}
	interval := rejoin
	registered := false
	for {
		reg, err := RegisterWorker(ctx, client, coordinator, addr)
		switch {
		case err == nil:
			if !registered {
				logger.Printf("dist: registered with %s as %s (%d workers, ttl %dms)",
					coordinator, addr, reg.Workers, reg.TTLMillis)
			}
			registered = true
			switch {
			case reg.HeartbeatMillis > 0:
				interval = time.Duration(reg.HeartbeatMillis) * time.Millisecond
			case reg.TTLMillis > 0:
				interval = time.Duration(reg.TTLMillis) * time.Millisecond / 3
			}
		case ctx.Err() != nil:
			return
		default:
			if registered {
				interval = rejoin
			}
			registered = false
			logger.Printf("dist: registering with %s: %v (retrying in %v)", coordinator, err, interval)
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}

// DeregisterWorker announces that addr is draining, so the coordinator
// stops granting it leases and re-splits whatever it still holds. Best
// effort: a dead coordinator finds out via the missed heartbeats anyway.
func DeregisterWorker(ctx context.Context, client *http.Client, coordinator, addr string) error {
	if client == nil {
		client = http.DefaultClient
	}
	body, err := json.Marshal(DeregisterRequest{Addr: addr})
	if err != nil {
		return fmt.Errorf("dist: encoding deregistration: %w", err)
	}
	url := coordinator
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimSuffix(url, "/") + "/dist/deregister"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("dist: building deregistration: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("dist: coordinator %s: %w", coordinator, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("dist: coordinator %s: status %d: %s",
			coordinator, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}
