package dist

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"hsfsim/internal/hsf"
	"hsfsim/internal/telemetry"
)

// TestDistTelemetryLeaseTimeline runs a healthy loopback fleet with a
// recorder and progress tracker attached: every batch must show up in the
// lease timeline and the merged path counts must reconcile.
func TestDistTelemetryLeaseTimeline(t *testing.T) {
	job := testJob(7)
	lb := NewLoopback()
	lb.AddWorker("w0", ExecOptions{})
	lb.AddWorker("w1", ExecOptions{})

	var cbLeases atomic.Int64
	co := mustNew(t, Config{
		Transport: lb,
		Logger:    quietLogger(),
		OnLease:   func(ev telemetry.LeaseEvent) { cbLeases.Add(1) },
	})
	co.AddWorker("w0")
	co.AddWorker("w1")

	rec := telemetry.New()
	var tr telemetry.Tracker
	res, err := co.Run(context.Background(), job, RunOptions{Telemetry: rec, Progress: &tr})
	if err != nil {
		t.Fatal(err)
	}
	rep := rec.Report()
	if len(rep.Leases) != res.Batches {
		t.Fatalf("lease timeline has %d events, want one per batch (%d)", len(rep.Leases), res.Batches)
	}
	if got := cbLeases.Load(); got != int64(res.Batches) {
		t.Fatalf("OnLease fired %d times, want %d", got, res.Batches)
	}
	if rep.LeaseDurations.Count != int64(res.Batches) {
		t.Fatalf("lease histogram count = %d, want %d", rep.LeaseDurations.Count, res.Batches)
	}
	var leasePaths int64
	for _, ev := range rep.Leases {
		if ev.Err != "" {
			t.Fatalf("unexpected lease error: %+v", ev)
		}
		if ev.DurMs < 0 || ev.StartMs < 0 {
			t.Fatalf("bad lease timing: %+v", ev)
		}
		leasePaths += ev.Paths
	}
	if leasePaths != res.PathsSimulated {
		t.Fatalf("lease paths sum = %d, Result.PathsSimulated = %d", leasePaths, res.PathsSimulated)
	}
	if rep.Paths.Simulated != res.PathsSimulated {
		t.Fatalf("report simulated = %d, want %d", rep.Paths.Simulated, res.PathsSimulated)
	}
	if tr.Done() != res.PathsSimulated || tr.Total() != int64(res.NumPaths) {
		t.Fatalf("tracker %d/%d, want %d/%d", tr.Done(), tr.Total(), res.PathsSimulated, res.NumPaths)
	}
}

// TestDistTelemetryKillMidRunResume is the distributed half of the
// counter-accuracy criterion: a worker dies mid-run, the run checkpoints,
// and the resumed run's telemetry must account for every path exactly once
// (resumed + freshly simulated == the plan's total).
func TestDistTelemetryKillMidRunResume(t *testing.T) {
	job := testJob(8)
	lb := NewLoopback()
	lb.AddWorker("w0", ExecOptions{})
	var killOnce atomic.Bool
	rec1 := telemetry.New()
	co := mustNew(t, Config{
		Transport: lb,
		Logger:    quietLogger(),
		BatchSize: 1,
		onLease: func(worker string, batch int) {
			if killOnce.Swap(true) {
				lb.Kill("w0")
			}
		},
	})
	co.AddWorker("w0")
	var ckBuf bytes.Buffer
	_, err := co.Run(context.Background(), job, RunOptions{CheckpointWriter: &ckBuf, Telemetry: rec1})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("got %v, want ErrNoWorkers", err)
	}
	rep1 := rec1.Report()
	var failed int
	for _, ev := range rep1.Leases {
		if ev.Err != "" {
			failed++
		}
	}
	if failed == 0 {
		t.Fatal("killed worker's failed leases missing from the timeline")
	}
	ck, err := hsf.ReadCheckpoint(&ckBuf)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Paths.Simulated != ck.PathsSimulated {
		t.Fatalf("faulted report simulated = %d, checkpoint = %d", rep1.Paths.Simulated, ck.PathsSimulated)
	}

	lb2 := NewLoopback()
	lb2.AddWorker("w1", ExecOptions{})
	co2 := mustNew(t, Config{Transport: lb2, Logger: quietLogger()})
	co2.AddWorker("w1")
	rec2 := telemetry.New()
	var tr telemetry.Tracker
	res, err := co2.Run(context.Background(), job, RunOptions{Resume: ck, Telemetry: rec2, Progress: &tr})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := rec2.Report()
	if rep2.Paths.Simulated != res.PathsSimulated {
		t.Fatalf("resumed report simulated = %d, Result = %d", rep2.Paths.Simulated, res.PathsSimulated)
	}
	if rep2.Paths.Resumed != ck.PathsSimulated {
		t.Fatalf("resumed = %d, checkpoint had %d", rep2.Paths.Resumed, ck.PathsSimulated)
	}
	if res.PathsSimulated != int64(res.NumPaths) {
		t.Fatalf("resumed run incomplete: %d of %d paths", res.PathsSimulated, res.NumPaths)
	}
	if tr.Done() != int64(res.NumPaths) {
		t.Fatalf("tracker done = %d, want %d", tr.Done(), res.NumPaths)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)
}

// TestDistWorkerTelemetry checks ExecOptions.Telemetry feeds a worker-side
// recorder during lease execution.
func TestDistWorkerTelemetry(t *testing.T) {
	job := testJob(9)
	wrec := telemetry.New()
	lb := NewLoopback()
	lb.AddWorker("w0", ExecOptions{Telemetry: wrec})
	co := mustNew(t, Config{Transport: lb, Logger: quietLogger()})
	co.AddWorker("w0")
	res, err := co.Run(context.Background(), job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := wrec.Report()
	if rep.Counters.Leaves != res.PathsSimulated {
		t.Fatalf("worker recorder saw %d leaves, coordinator merged %d paths",
			rep.Counters.Leaves, res.PathsSimulated)
	}
	if rep.Counters.SegmentApplications == 0 || len(rep.Segments) == 0 {
		t.Fatalf("worker recorder has no segment stats: %+v", rep.Counters)
	}
}
