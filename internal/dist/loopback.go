package dist

import (
	"context"
	"fmt"
	"sync"
	"time"

	"hsfsim/internal/hsf"
)

// Loopback is an in-process Transport: leases execute directly through
// ExecuteRun in the coordinator's process. It exists so the full protocol —
// lease state machine, reassignment, merge dedup — is testable without
// sockets, and doubles as a degenerate single-machine backend.
//
// Worker failure modes are scriptable per worker: Kill makes every future
// lease fail like a dead TCP peer, Stall makes leases hang until their
// deadline. Both are transient errors from the coordinator's point of view,
// exactly as over HTTP.
type Loopback struct {
	mu      sync.Mutex
	workers map[string]*loopWorker
}

type loopWorker struct {
	opts     ExecOptions
	killed   bool
	stalled  bool
	runs     int
	delay    time.Duration
	truncate int
	hold     chan struct{}
}

// NewLoopback returns an empty in-process transport.
func NewLoopback() *Loopback {
	return &Loopback{workers: make(map[string]*loopWorker)}
}

// AddWorker registers an in-process worker under the given name.
func (l *Loopback) AddWorker(name string, opts ExecOptions) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.workers[name] = &loopWorker{opts: opts}
}

// Kill marks the worker dead: every subsequent lease fails immediately with
// a transient error, like a connection refused after a process crash.
func (l *Loopback) Kill(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w := l.workers[name]; w != nil {
		w.killed = true
	}
}

// Stall marks the worker stalled: leases block until their deadline expires.
func (l *Loopback) Stall(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w := l.workers[name]; w != nil {
		w.stalled = true
	}
}

// Delay makes every lease on the worker take at least d after executing —
// a slow worker whose replies arrive late but intact.
func (l *Loopback) Delay(name string, d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w := l.workers[name]; w != nil {
		w.delay = d
	}
}

// Truncate makes the worker execute only the first n prefixes of every
// lease, yielding deterministic partial returns (a drained worker's shape).
func (l *Loopback) Truncate(name string, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w := l.workers[name]; w != nil {
		w.truncate = n
	}
}

// Hold parks the worker's next reply: the lease executes eagerly, then the
// reply is withheld until the returned release function is called or the
// lease context ends — and it is delivered intact either way, modeling a
// reply that arrives after the coordinator moved on. One-shot.
func (l *Loopback) Hold(name string) (release func()) {
	ch := make(chan struct{})
	l.mu.Lock()
	defer l.mu.Unlock()
	if w := l.workers[name]; w != nil {
		w.hold = ch
	}
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// Runs reports how many leases the worker completed or attempted.
func (l *Loopback) Runs(name string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w := l.workers[name]; w != nil {
		return w.runs
	}
	return 0
}

// Run implements Transport.
func (l *Loopback) Run(ctx context.Context, addr string, req *RunRequest) (*hsf.Checkpoint, error) {
	l.mu.Lock()
	w := l.workers[addr]
	if w == nil {
		l.mu.Unlock()
		return nil, fmt.Errorf("dist: loopback worker %s: connection refused", addr)
	}
	w.runs++
	killed, stalled := w.killed, w.stalled
	delay, truncate := w.delay, w.truncate
	hold := w.hold
	w.hold = nil // one-shot
	opts := w.opts
	l.mu.Unlock()

	if killed {
		return nil, fmt.Errorf("dist: loopback worker %s: connection refused", addr)
	}
	if stalled {
		<-ctx.Done()
		return nil, fmt.Errorf("dist: loopback worker %s: %w", addr, context.Cause(ctx))
	}
	if truncate > 0 && truncate < len(req.Prefixes) {
		trunc := *req
		trunc.Prefixes = req.Prefixes[:truncate]
		req = &trunc
	}
	ck, err := ExecuteRun(ctx, req, opts)
	if err != nil {
		if IsPermanent(err) {
			return nil, err // ExecuteRun already classified it
		}
		return nil, fmt.Errorf("dist: loopback worker %s: %w", addr, err)
	}
	if delay > 0 {
		// The reply is already computed; deliver it late but intact even if
		// the lease context expires meanwhile.
		time.Sleep(delay)
	}
	if hold != nil {
		select {
		case <-hold:
		case <-ctx.Done():
		}
	}
	return ck, nil
}
