package dist

import (
	"context"
	"fmt"
	"sync"

	"hsfsim/internal/hsf"
)

// Loopback is an in-process Transport: leases execute directly through
// ExecuteRun in the coordinator's process. It exists so the full protocol —
// lease state machine, reassignment, merge dedup — is testable without
// sockets, and doubles as a degenerate single-machine backend.
//
// Worker failure modes are scriptable per worker: Kill makes every future
// lease fail like a dead TCP peer, Stall makes leases hang until their
// deadline. Both are transient errors from the coordinator's point of view,
// exactly as over HTTP.
type Loopback struct {
	mu      sync.Mutex
	workers map[string]*loopWorker
}

type loopWorker struct {
	opts    ExecOptions
	killed  bool
	stalled bool
	runs    int
}

// NewLoopback returns an empty in-process transport.
func NewLoopback() *Loopback {
	return &Loopback{workers: make(map[string]*loopWorker)}
}

// AddWorker registers an in-process worker under the given name.
func (l *Loopback) AddWorker(name string, opts ExecOptions) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.workers[name] = &loopWorker{opts: opts}
}

// Kill marks the worker dead: every subsequent lease fails immediately with
// a transient error, like a connection refused after a process crash.
func (l *Loopback) Kill(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w := l.workers[name]; w != nil {
		w.killed = true
	}
}

// Stall marks the worker stalled: leases block until their deadline expires.
func (l *Loopback) Stall(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w := l.workers[name]; w != nil {
		w.stalled = true
	}
}

// Runs reports how many leases the worker completed or attempted.
func (l *Loopback) Runs(name string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w := l.workers[name]; w != nil {
		return w.runs
	}
	return 0
}

// Run implements Transport.
func (l *Loopback) Run(ctx context.Context, addr string, req *RunRequest) (*hsf.Checkpoint, error) {
	l.mu.Lock()
	w := l.workers[addr]
	if w == nil {
		l.mu.Unlock()
		return nil, fmt.Errorf("dist: loopback worker %s: connection refused", addr)
	}
	w.runs++
	killed, stalled := w.killed, w.stalled
	opts := w.opts
	l.mu.Unlock()

	if killed {
		return nil, fmt.Errorf("dist: loopback worker %s: connection refused", addr)
	}
	if stalled {
		<-ctx.Done()
		return nil, fmt.Errorf("dist: loopback worker %s: %w", addr, context.Cause(ctx))
	}
	ck, err := ExecuteRun(ctx, req, opts)
	if err != nil {
		if IsPermanent(err) {
			return nil, err // ExecuteRun already classified it
		}
		return nil, fmt.Errorf("dist: loopback worker %s: %w", addr, err)
	}
	return ck, nil
}
