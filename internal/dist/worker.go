package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hsfsim/internal/hsf"
	"hsfsim/internal/telemetry"
)

// ExecOptions bounds a worker's local execution; they come from the worker's
// own configuration (its admission budget), not from the coordinator.
type ExecOptions struct {
	// Workers is the per-lease simulation parallelism (0: all CPUs).
	Workers int
	// MemoryBudget and MaxPaths feed the engine's admission gate; a lease
	// whose cost exceeds them is refused with hsf.ErrBudget before any
	// statevector is allocated.
	MemoryBudget int64
	MaxPaths     uint64
	// Telemetry, when non-nil, records the lease's engine-level
	// measurements (segment timings, leaf latencies, kernel classes). A
	// daemon passes its service-scoped recorder so /metrics histograms
	// cover worker executions too.
	Telemetry *telemetry.Recorder
}

// ExecuteRun is the worker half of the protocol: compile the job's plan,
// verify it fingerprints to the coordinator's, and execute exactly the leased
// prefix batch. The returned checkpoint is the partial accumulator the
// coordinator merges.
//
// Job-shaped failures — a malformed request, an unplannable circuit, a plan
// fingerprint mismatch, an admission rejection — are returned as
// *PermanentError because every worker would repeat them; execution failures
// (cancellation, deadline, a panicking path worker) stay transient so the
// coordinator reassigns the lease.
func ExecuteRun(ctx context.Context, req *RunRequest, opts ExecOptions) (*hsf.Checkpoint, error) {
	if err := req.Validate(); err != nil {
		return nil, Permanent(err)
	}
	plan, err := req.Job.BuildPlan()
	if err != nil {
		return nil, Permanent(err)
	}
	if h := hsf.PlanHash(plan); h != req.PlanHash {
		return nil, Permanent(fmt.Errorf("%w: local %016x != lease %016x", ErrPlanMismatch, h, req.PlanHash))
	}
	backend, err := hsf.ParseBackend(req.Job.Backend)
	if err != nil {
		return nil, Permanent(err) // retrying elsewhere cannot fix a bad name
	}
	workers := opts.Workers
	if !backend.ParallelWorkers() {
		workers = 1
	}
	if req.LeaseMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.LeaseMillis)*time.Millisecond)
		defer cancel()
	}
	run := hsf.RunPrefixesContext
	if req.AllowPartial {
		// Drain semantics: cancellation or the lease deadline yields the
		// finished subset as a valid partial instead of an error, so a
		// SIGTERM'd worker hands its work back rather than abandoning it.
		run = hsf.RunPrefixesPartialContext
	}
	// Report the local execution window to whichever side is estimating
	// this worker's clock offset: the loopback transport shares the
	// coordinator's context directly, the HTTP handler copies the window
	// into reply headers.
	meta := leaseMetaFrom(ctx)
	if meta != nil {
		meta.workerStartNS = time.Now().UnixNano()
	}
	ck, err := run(ctx, plan, hsf.Options{
		MaxAmplitudes:   req.Job.MaxAmplitudes,
		Backend:         backend,
		Workers:         workers,
		FusionMaxQubits: req.Job.FusionMaxQubits,
		MemoryBudget:    opts.MemoryBudget,
		MaxPaths:        opts.MaxPaths,
		Telemetry:       opts.Telemetry,
	}, req.SplitLevels, req.Prefixes)
	if meta != nil {
		meta.workerEndNS = time.Now().UnixNano()
	}
	if err != nil {
		if errors.Is(err, hsf.ErrBudget) {
			return nil, Permanent(err)
		}
		return nil, err
	}
	return ck, nil
}
