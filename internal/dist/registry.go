package dist

import (
	"sort"
	"sync"
	"time"
)

// registry tracks the worker fleet. Static workers (given on the command
// line) never expire; dynamic workers (registered over /dist/register) are
// heartbeat-based and expire after the TTL, so a worker that dies silently
// drops out of the rotation for future runs.
type registry struct {
	mu     sync.Mutex
	ttl    time.Duration
	static map[string]bool
	// dynamic maps worker address to its last heartbeat.
	dynamic map[string]time.Time
	// partitioned workers are cut off from the registry: their heartbeats
	// are dropped and they are excluded from the fleet, as if the network
	// between them and the coordinator failed (fault injection).
	partitioned map[string]bool
	now         func() time.Time // test hook
}

func newRegistry(ttl time.Duration) *registry {
	if ttl <= 0 {
		ttl = time.Minute
	}
	return &registry{
		ttl:         ttl,
		static:      make(map[string]bool),
		dynamic:     make(map[string]time.Time),
		partitioned: make(map[string]bool),
		now:         time.Now,
	}
}

// addStatic pins a worker that never expires.
func (r *registry) addStatic(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.static[addr] = true
}

// register records a heartbeat from a dynamic worker. Heartbeats from a
// partitioned worker are dropped on the floor.
func (r *registry) register(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.partitioned[addr] {
		return
	}
	r.dynamic[addr] = r.now()
}

// partition cuts addr off from (or reconnects it to) the registry.
func (r *registry) partition(addr string, cut bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cut {
		r.partitioned[addr] = true
		delete(r.dynamic, addr)
	} else {
		delete(r.partitioned, addr)
	}
}

// remove drops a worker from both sets.
func (r *registry) remove(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.static, addr)
	delete(r.dynamic, addr)
}

// workers returns the live fleet, sorted for determinism: all static workers
// plus dynamic ones whose heartbeat is fresher than the TTL (expired entries
// are pruned as a side effect).
func (r *registry) workers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	cutoff := r.now().Add(-r.ttl)
	out := make([]string, 0, len(r.static)+len(r.dynamic))
	for a := range r.static {
		if !r.partitioned[a] {
			out = append(out, a)
		}
	}
	for a, seen := range r.dynamic {
		if seen.Before(cutoff) {
			delete(r.dynamic, a)
			continue
		}
		if !r.static[a] && !r.partitioned[a] {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}
