// Integration tests of the tracing layer through the dist protocol: lease
// and worker-exec spans joining the caller's trace over loopback, steal
// leases linking their victim, and the merged fleet timeline persisted next
// to a run's checkpoints — including the chaos case (half the fleet killed
// mid-run) whose timeline must still account for nearly all of the
// coordinator's wall clock.
package dist

import (
	"context"
	"encoding/json"
	"sort"
	"testing"
	"time"

	"hsfsim/internal/telemetry/trace"
)

// tracedCtx returns a context carrying a fresh recorder and a root span for
// lease spans to parent under, plus the recorder for inspection.
func tracedCtx(t *testing.T) (context.Context, *trace.Recorder, trace.SpanContext) {
	t.Helper()
	rec := trace.NewRecorder(0)
	sp := rec.Start(trace.SpanContext{}, "test-root")
	sc := sp.Context()
	t.Cleanup(sp.End)
	return trace.NewContext(context.Background(), rec, sc), rec, sc
}

func eventsNamed(events []trace.Event, name string) []trace.Event {
	var out []trace.Event
	for _, ev := range events {
		if ev.Name == name {
			out = append(out, ev)
		}
	}
	return out
}

func TestTracedLoopbackRunRecordsFleetSpans(t *testing.T) {
	job := testJob(51)
	lb := NewLoopback()
	lb.AddWorker("w0", ExecOptions{})
	lb.AddWorker("w1", ExecOptions{})
	co := mustNew(t, Config{Transport: lb, Logger: quietLogger()})
	co.AddWorker("w0")
	co.AddWorker("w1")

	ctx, rec, root := tracedCtx(t)
	res, err := co.Run(ctx, job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)

	events := rec.Snapshot()
	runs := eventsNamed(events, "dist-run")
	if len(runs) != 1 {
		t.Fatalf("dist-run spans = %d, want 1", len(runs))
	}
	run := runs[0]
	if run.Trace != root.Trace {
		t.Fatalf("dist-run trace %s does not join the caller's trace %s", run.Trace, root.Trace)
	}
	if run.Parent != root.Span {
		t.Fatalf("dist-run parent %s, want the caller's span %s", run.Parent, root.Span)
	}
	leases := eventsNamed(events, "lease")
	if len(leases) == 0 {
		t.Fatal("no lease spans recorded")
	}
	for _, l := range leases {
		if l.Trace != root.Trace {
			t.Fatalf("lease span on trace %s, want %s", l.Trace, root.Trace)
		}
		if l.Parent != run.Span {
			t.Fatalf("lease parent %s, want the dist-run span %s", l.Parent, run.Span)
		}
		if l.Lane < 1 {
			t.Fatalf("lease lane %d, want >= 1 (lane 0 is the coordinator)", l.Lane)
		}
		if l.Str("worker") == "" {
			t.Fatal("lease span has no worker attribute")
		}
	}
	execs := eventsNamed(events, "worker-exec")
	if len(execs) == 0 {
		t.Fatal("no worker-exec spans recorded (loopback leaseMeta not stamped)")
	}
	leaseIDs := map[trace.SpanID]bool{}
	for _, l := range leases {
		leaseIDs[l.Span] = true
	}
	for _, ex := range execs {
		if !leaseIDs[ex.Parent] {
			t.Fatalf("worker-exec parent %s is not a lease span", ex.Parent)
		}
	}
}

func TestStealLeaseSpanLinksVictim(t *testing.T) {
	job := testJob(34)
	lb := NewLoopback()
	lb.AddWorker("fast", ExecOptions{})
	lb.AddWorker("slow", ExecOptions{})
	lb.Delay("fast", 2*time.Millisecond)
	lb.Delay("slow", 300*time.Millisecond)

	co := mustNew(t, Config{
		Transport:          lb,
		Logger:             quietLogger(),
		BatchSize:          4,
		StealDelay:         50 * time.Millisecond,
		MembershipInterval: 10 * time.Millisecond,
	})
	co.AddWorker("fast")
	co.AddWorker("slow")

	ctx, rec, _ := tracedCtx(t)
	res, err := co.Run(ctx, job, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steals == 0 {
		t.Fatal("no lease was stolen; nothing to assert")
	}
	events := rec.Snapshot()
	leases := eventsNamed(events, "lease")
	byID := map[trace.SpanID]trace.Event{}
	for _, l := range leases {
		byID[l.Span] = l
	}
	linked := 0
	for _, l := range leases {
		if !l.Link.Valid() {
			continue
		}
		linked++
		victim, ok := byID[l.Link.Span]
		if !ok {
			t.Fatalf("steal lease links span %s, which is not a recorded lease", l.Link.Span)
		}
		if victim.Span == l.Span {
			t.Fatal("steal lease links itself")
		}
	}
	if linked == 0 {
		t.Fatalf("run reported %d steals but no lease span carries a victim link", res.Steals)
	}
}

// TestChaosTimelineCoversCoordinatorWallClock is the acceptance criterion:
// a distributed run that loses half its fleet mid-run must still persist a
// merged fleet timeline whose spans account for >= 95%% of the coordinator's
// wall clock (every moment of the run is attributable to waiting, executing,
// merging, or flushing — no dark time).
func TestChaosTimelineCoversCoordinatorWallClock(t *testing.T) {
	// Standard cutting keeps every crossing gate a separate cut, so the
	// prefix space splits into dozens of single-prefix leases — enough
	// rounds that the doomed workers reach their kill threshold mid-run.
	job := &Job{QASM: testQASM(10, 14, 52), Method: "standard", CutPos: 4}
	lb := NewLoopback()
	for _, w := range []string{"w0", "w1", "w2", "w3"} {
		lb.AddWorker(w, ExecOptions{})
		// A small reply delay keeps all four workers in rotation long
		// enough that the doomed ones reach their second lease.
		lb.Delay(w, 5*time.Millisecond)
	}
	// Half the fleet dies after its first lease; the survivors absorb the
	// reassigned batches.
	chaos := NewChaos(lb, ChaosConfig{
		Seed:            1,
		KillAfterLeases: map[string]int{"w1": 1, "w3": 1},
	})
	co := mustNew(t, Config{
		Transport: chaos,
		Logger:    quietLogger(),
		BatchSize: 1, // one prefix per lease, so every worker sees several leases
	})
	for _, w := range []string{"w0", "w1", "w2", "w3"} {
		co.AddWorker(w)
	}

	store, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, rec, _ := tracedCtx(t)
	res, err := co.Run(ctx, job, RunOptions{Store: store, RunID: "chaos-run"})
	if err != nil {
		t.Fatal(err)
	}
	if chaos.Kills != 2 {
		t.Fatalf("chaos killed %d workers, want 2", chaos.Kills)
	}
	assertAmplitudesMatch(t, res.Amplitudes, singleProcess(t, job), 1e-12)

	// The merged fleet timeline landed next to the checkpoints and is
	// loadable Chrome trace-event JSON.
	data, err := store.LoadTimeline("chaos-run")
	if err != nil {
		t.Fatalf("LoadTimeline: %v", err)
	}
	var tl struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tl); err != nil {
		t.Fatalf("timeline is not Chrome trace JSON: %v", err)
	}
	var spans int
	for _, ev := range tl.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatal("timeline has no complete (ph=X) span events")
	}

	// Coverage: the union of all child spans must account for >= 95% of the
	// dist-run root span's duration.
	events := rec.Snapshot()
	runs := eventsNamed(events, "dist-run")
	if len(runs) != 1 {
		t.Fatalf("dist-run spans = %d, want 1", len(runs))
	}
	root := runs[0]
	type iv struct{ a, b int64 }
	var ivs []iv
	for _, ev := range events {
		if ev.Name == "dist-run" || ev.Name == "test-root" {
			continue
		}
		a, b := ev.Start, ev.End()
		if a < root.Start {
			a = root.Start
		}
		if b > root.End() {
			b = root.End()
		}
		if b > a {
			ivs = append(ivs, iv{a, b})
		}
	}
	sort.Slice(ivs, func(i, k int) bool { return ivs[i].a < ivs[k].a })
	var covered, cursor int64
	for _, v := range ivs {
		if v.a > cursor {
			cursor = v.a
		}
		if v.b > cursor {
			covered += v.b - cursor
			cursor = v.b
		}
	}
	if root.Dur <= 0 {
		t.Fatal("dist-run span has no duration")
	}
	pct := float64(covered) / float64(root.Dur) * 100
	if pct < 95 {
		t.Fatalf("timeline spans cover %.1f%% of the coordinator wall clock, want >= 95%%", pct)
	}
}
