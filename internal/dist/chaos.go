// Fault injection for the distributed runtime. Chaos wraps any Transport
// and perturbs it with a seeded RNG so failures are reproducible: replies
// dropped after the work was done (the worker computed, the coordinator
// never hears), delayed deliveries, stale duplicate deliveries, and workers
// that die after a number of leases. Registry partitions are injected on the
// coordinator side (Coordinator.PartitionRegistry); together they cover the
// failure modes the chaos suite exercises.
package dist

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hsfsim/internal/hsf"
)

// ChaosConfig sets the fault mix. Zero values inject nothing.
type ChaosConfig struct {
	// Seed makes every probabilistic decision reproducible.
	Seed int64
	// DropReply is the probability a successful reply is discarded after
	// execution: the lease's work is done but the coordinator sees a
	// transient failure — the classic lost-ack, exercising duplicate
	// suppression when the lease is re-run.
	DropReply float64
	// DuplicateReply is the probability a successful reply is replaced by a
	// replay of an earlier (stale) reply, as a duplicated in-flight delivery
	// would surface. The fresh work is lost; the coordinator must reject the
	// stale partial and requeue.
	DuplicateReply float64
	// MaxDelay delays each lease by a uniform random amount up to this.
	MaxDelay time.Duration
	// KillAfterLeases kills a worker after it has been granted that many
	// leases: every later lease fails like a dead TCP peer until Revive.
	KillAfterLeases map[string]int
}

// Chaos is a fault-injecting Transport wrapper.
type Chaos struct {
	inner Transport
	cfg   ChaosConfig

	mu      sync.Mutex
	rng     *rand.Rand
	killed  map[string]bool
	granted map[string]int
	// cache holds clones of past successful replies for duplicate injection.
	cache []*hsf.Checkpoint

	// Injection counters, for tests to assert the chaos actually happened.
	Dropped    int
	Duplicated int
	Kills      int
}

// NewChaos wraps inner with the given fault mix.
func NewChaos(inner Transport, cfg ChaosConfig) *Chaos {
	return &Chaos{
		inner:   inner,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		killed:  make(map[string]bool),
		granted: make(map[string]int),
	}
}

// Kill makes every subsequent lease to name fail with a transient error.
func (c *Chaos) Kill(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.killed[name] {
		c.killed[name] = true
		c.Kills++
	}
}

// Revive undoes Kill (a worker process restarted at the same address).
func (c *Chaos) Revive(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.killed, name)
	c.granted[name] = 0
}

// Run implements Transport.
func (c *Chaos) Run(ctx context.Context, addr string, req *RunRequest) (*hsf.Checkpoint, error) {
	c.mu.Lock()
	if limit, ok := c.cfg.KillAfterLeases[addr]; ok && !c.killed[addr] && c.granted[addr] >= limit {
		c.killed[addr] = true
		c.Kills++
	}
	if c.killed[addr] {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: chaos: worker %s: connection refused", addr)
	}
	c.granted[addr]++
	var delay time.Duration
	if c.cfg.MaxDelay > 0 {
		delay = time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay) + 1))
	}
	drop := c.cfg.DropReply > 0 && c.rng.Float64() < c.cfg.DropReply
	var stale *hsf.Checkpoint
	if c.cfg.DuplicateReply > 0 && len(c.cache) > 0 && c.rng.Float64() < c.cfg.DuplicateReply {
		stale = c.cache[c.rng.Intn(len(c.cache))].Clone()
	}
	c.mu.Unlock()

	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, fmt.Errorf("dist: chaos: worker %s: %w", addr, context.Cause(ctx))
		}
	}
	ck, err := c.inner.Run(ctx, addr, req)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.cache = append(c.cache, ck.Clone())
	if len(c.cache) > 32 {
		c.cache = c.cache[len(c.cache)-32:]
	}
	if drop {
		c.Dropped++
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: chaos: dropped reply from %s", addr)
	}
	if stale != nil && stale.PlanHash == ck.PlanHash && stale.SplitLevels == ck.SplitLevels && stale.M == ck.M {
		c.Duplicated++
		c.mu.Unlock()
		return stale, nil
	}
	c.mu.Unlock()
	return ck, nil
}
