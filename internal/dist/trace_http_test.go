// Tracing over real HTTP: the coordinator's traceparent header must join
// worker-side request spans to the coordinator's trace (visible through the
// worker's /debug/trace endpoint), retried lease attempts must carry the
// identical traceparent, and the worker execution-window headers must come
// back usable as worker-exec spans.
package dist_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hsfsim/internal/dist"
	"hsfsim/internal/server"
	"hsfsim/internal/telemetry/trace"
)

func tracedHTTPCtx(t *testing.T) (context.Context, *trace.Recorder, trace.SpanContext) {
	t.Helper()
	rec := trace.NewRecorder(0)
	sp := rec.Start(trace.SpanContext{}, "test-root")
	sc := sp.Context()
	t.Cleanup(sp.End)
	return trace.NewContext(context.Background(), rec, sc), rec, sc
}

func TestTraceparentPropagatesOverHTTP(t *testing.T) {
	job := &dist.Job{QASM: integQASM(8, 10, 61), Method: "joint", CutPos: 3}
	w1 := newWorkerServer()
	defer w1.Close()
	w2 := newWorkerServer()
	defer w2.Close()

	co := mustNew(t, dist.Config{Transport: &dist.HTTPTransport{}, Logger: discard()})
	co.AddWorker(workerAddr(w1))
	co.AddWorker(workerAddr(w2))

	ctx, rec, root := tracedHTTPCtx(t)
	if _, err := co.Run(ctx, job, dist.RunOptions{}); err != nil {
		t.Fatal(err)
	}

	// Coordinator side: the worker execution windows came back as headers
	// and were folded into the coordinator's trace as worker-exec spans.
	var execs int
	for _, ev := range rec.Snapshot() {
		if ev.Name == "worker-exec" {
			execs++
			if ev.Trace != root.Trace {
				t.Fatalf("worker-exec span on trace %s, want %s", ev.Trace, root.Trace)
			}
		}
	}
	if execs == 0 {
		t.Fatal("no worker-exec spans: execution-window headers did not round-trip")
	}

	// Worker side: /debug/trace filtered by the coordinator's trace ID must
	// return the /dist/run request spans that joined it.
	resp, err := http.Get(w1.URL + "/debug/trace?run=" + root.Trace.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace: status %d, want 200", resp.StatusCode)
	}
	var tl struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		t.Fatalf("decoding worker trace: %v", err)
	}
	// The filtered dump carries the request spans plus the engine spans
	// (compile, walk, prefix) that executed under them — all on the
	// coordinator's trace.
	var joined int
	for _, ev := range tl.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if got := ev.Args["trace"]; got != root.Trace.String() {
			t.Fatalf("worker span %q trace = %v, want %s", ev.Name, got, root.Trace)
		}
		if ev.Name == "/dist/run" {
			joined++
		}
	}
	if joined == 0 {
		t.Fatal("worker recorded no /dist/run spans under the coordinator's trace ID")
	}
}

// flakyProxy rejects each worker's first /dist/run attempt with a 503 and
// forwards the rest, capturing every traceparent header it sees.
type flakyProxy struct {
	inner http.Handler

	mu       sync.Mutex
	rejected bool
	headers  []string
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.headers = append(f.headers, r.Header.Get(trace.Header))
	first := !f.rejected
	f.rejected = true
	f.mu.Unlock()
	if first {
		http.Error(w, "temporarily overloaded", http.StatusServiceUnavailable)
		return
	}
	f.inner.ServeHTTP(w, r)
}

func TestHTTPRetryCarriesSameTraceparent(t *testing.T) {
	job := &dist.Job{QASM: integQASM(8, 10, 62), Method: "joint", CutPos: 3}
	proxy := &flakyProxy{inner: server.NewWithConfig(server.Config{Logger: discard()})}
	srv := httptest.NewServer(proxy)
	defer srv.Close()

	co := mustNew(t, dist.Config{
		Transport: &dist.HTTPTransport{BaseBackoff: time.Millisecond},
		Logger:    discard(),
		BatchSize: 1 << 20, // one lease holds the whole prefix space
	})
	co.AddWorker(workerAddr(srv))

	ctx, rec, _ := tracedHTTPCtx(t)
	if _, err := co.Run(ctx, job, dist.RunOptions{}); err != nil {
		t.Fatal(err)
	}

	proxy.mu.Lock()
	headers := append([]string(nil), proxy.headers...)
	proxy.mu.Unlock()
	if len(headers) < 2 {
		t.Fatalf("worker saw %d attempts, want at least 2 (one rejected, one retried)", len(headers))
	}
	if headers[0] == "" {
		t.Fatal("first attempt carried no traceparent")
	}
	if headers[0] != headers[1] {
		t.Fatalf("retry changed the traceparent: %q then %q", headers[0], headers[1])
	}
	sc, err := trace.ParseTraceparent(headers[0])
	if err != nil {
		t.Fatalf("traceparent %q does not parse: %v", headers[0], err)
	}
	// The propagated span must be the retried lease's own span, recorded on
	// the coordinator under that same trace.
	var found bool
	for _, ev := range rec.Snapshot() {
		if ev.Name == "lease" && ev.Span == sc.Span {
			found = true
			if fmt.Sprintf("%s", ev.Trace) != sc.Trace.String() {
				t.Fatalf("lease span trace %s != propagated trace %s", ev.Trace, sc.Trace)
			}
		}
	}
	if !found {
		t.Fatalf("propagated span %s is not a recorded lease span", sc.Span)
	}
}
