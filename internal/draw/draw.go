// Package draw renders circuits and cut plans as ASCII diagrams — a textual
// reproduction of the paper's Fig. 6, which shades the RZZ gates of a QAOA
// problem layer by whether they are jointly cut (block), separately cut, or
// local.
package draw

import (
	"fmt"
	"strings"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
)

// Circuit renders the circuit as one column per gate with the cut line
// marked. Gates in blocks are tagged with their block id (B0, B1, …),
// separately cut gates with "S", local gates with their name initial.
func Circuit(c *circuit.Circuit, plan *cut.Plan) string {
	// Map planned-order gate columns: walk plan steps to recover the order
	// and each gate's classification.
	type col struct {
		qubits []int
		tag    string
	}
	var cols []col
	blockID := 0
	for _, st := range plan.Steps {
		switch st.Kind {
		case cut.LocalStep:
			name := st.Gate.Name
			tag := strings.ToUpper(name[:1])
			cols = append(cols, col{qubits: st.Gate.Qubits, tag: tag})
		case cut.CutStep:
			cp := st.Cut
			tag := "S"
			if cp.IsBlock() {
				tag = fmt.Sprintf("B%d", blockID)
				blockID++
			}
			// One column per member gate, all sharing the tag. Member
			// qubits are not retained per gate in the cut point, so render
			// the block as one wide column spanning its touched qubits.
			qs := append(append([]int(nil), cp.LowerQubits...), cp.UpperQubits...)
			cols = append(cols, col{qubits: qs, tag: tag})
		}
	}

	cutPos := plan.Partition.CutPos
	var sb strings.Builder
	width := 0
	for _, c := range cols {
		if len(c.tag) > width {
			width = len(c.tag)
		}
	}
	if width < 2 {
		width = 2
	}
	cell := func(s string) string {
		return fmt.Sprintf("%-*s", width, s)
	}
	for q := c.NumQubits - 1; q >= 0; q-- {
		fmt.Fprintf(&sb, "q%-2d ", q)
		for _, col := range cols {
			touch := false
			span := false
			minQ, maxQ := c.NumQubits, -1
			for _, cq := range col.qubits {
				if cq == q {
					touch = true
				}
				if cq < minQ {
					minQ = cq
				}
				if cq > maxQ {
					maxQ = cq
				}
			}
			if q > minQ && q < maxQ {
				span = true
			}
			switch {
			case touch:
				sb.WriteString(cell(col.tag))
			case span:
				sb.WriteString(cell("|"))
			default:
				sb.WriteString(cell("-"))
			}
			sb.WriteString(" ")
		}
		sb.WriteString("\n")
		if q == cutPos+1 {
			fmt.Fprintf(&sb, "    %s <- cut\n", strings.Repeat("~", (width+1)*len(cols)))
		}
	}
	return sb.String()
}

// Legend explains the tags used by Circuit.
func Legend() string {
	return "Bk = joint-cut block k, S = separately cut gate, | = gate span, - = idle wire\n" +
		"(local gates show their name's initial)"
}
