package draw

import (
	"strings"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/gate"
)

func TestCircuitRendersBlocksAndCut(t *testing.T) {
	c := circuit.New(5)
	c.Append(
		gate.H(0),
		gate.RZZ(0.3, 1, 2), gate.RZZ(0.4, 1, 3), // cascade -> block B0
		gate.SWAP(0, 4), // separate cut
	)
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 1}, Strategy: cut.StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	out := Circuit(c, plan)
	if !strings.Contains(out, "B0") {
		t.Fatalf("no block tag in rendering:\n%s", out)
	}
	if !strings.Contains(out, "S") {
		t.Fatalf("no separate-cut tag in rendering:\n%s", out)
	}
	if !strings.Contains(out, "<- cut") {
		t.Fatalf("no cut marker in rendering:\n%s", out)
	}
	// Every qubit wire must be present.
	for _, w := range []string{"q0", "q1", "q2", "q3", "q4"} {
		if !strings.Contains(out, w) {
			t.Fatalf("wire %s missing:\n%s", w, out)
		}
	}
	if Legend() == "" {
		t.Fatal("empty legend")
	}
}

func TestCircuitRendersLocalGates(t *testing.T) {
	c := circuit.New(3)
	c.Append(gate.H(0), gate.X(2), gate.RZZ(0.2, 1, 2))
	plan, err := cut.BuildPlan(c, cut.Options{Partition: cut.Partition{CutPos: 1}, Strategy: cut.StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	out := Circuit(c, plan)
	if !strings.Contains(out, "H") || !strings.Contains(out, "X") {
		t.Fatalf("local gate initials missing:\n%s", out)
	}
}
