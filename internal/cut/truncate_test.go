package cut

import (
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
)

func TestMaxCutRankTruncates(t *testing.T) {
	// A SWAP has rank 4; truncating to 2 halves the paths and flags the cut.
	c := circuit.New(2)
	c.Append(gate.SWAP(0, 1))
	exact, err := BuildPlan(c, Options{Partition: Partition{CutPos: 0}, Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	trunc, err := BuildPlan(c, Options{Partition: Partition{CutPos: 0}, Strategy: StrategyNone, MaxCutRank: 2})
	if err != nil {
		t.Fatal(err)
	}
	ne, _ := exact.NumPaths()
	nt, _ := trunc.NumPaths()
	if ne != 4 || nt != 2 {
		t.Fatalf("paths = %d/%d, want 4/2", ne, nt)
	}
	if exact.Cuts[0].Truncated || !trunc.Cuts[0].Truncated {
		t.Fatal("truncation flags wrong")
	}
	// Terms are sorted by σ descending, so the kept weight dominates.
	kept := trunc.Cuts[0].Terms
	if kept[0].Sigma < kept[1].Sigma {
		t.Fatal("terms not sorted by sigma")
	}
}

func TestMaxCutRankNoEffectOnLowRank(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.RZZ(0.4, 0, 1))
	plan, err := BuildPlan(c, Options{Partition: Partition{CutPos: 0}, Strategy: StrategyNone, MaxCutRank: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cuts[0].Truncated {
		t.Fatal("rank-2 cut should not be flagged truncated by a rank-4 budget")
	}
}
