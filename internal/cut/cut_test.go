package cut

import (
	"math"
	"testing"

	"hsfsim/internal/schmidt"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
)

func TestPartitionBasics(t *testing.T) {
	p := Partition{CutPos: 2} // qubits 0..2 lower, 3.. upper
	if !p.IsLower(0) || !p.IsLower(2) || p.IsLower(3) {
		t.Fatal("IsLower wrong")
	}
	if p.NumLower() != 3 || p.NumUpper(6) != 3 {
		t.Fatal("partition sizes wrong")
	}
	g := gate.CNOT(2, 3)
	if !p.Crosses(&g) {
		t.Fatal("crossing gate not detected")
	}
	l := gate.CNOT(0, 1)
	if p.Crosses(&l) {
		t.Fatal("local gate marked crossing")
	}
	if err := p.Validate(6); err != nil {
		t.Fatal(err)
	}
	if err := (Partition{CutPos: 2}).Validate(3); err == nil {
		t.Fatal("empty upper partition accepted")
	}
	if err := (Partition{CutPos: -1}).Validate(3); err == nil {
		t.Fatal("negative cut accepted")
	}
}

func TestCrossingGateIndices(t *testing.T) {
	c := circuit.New(4)
	c.Append(gate.H(0), gate.CNOT(0, 1), gate.CNOT(1, 2), gate.CNOT(2, 3), gate.RZZ(0.4, 0, 3))
	idx := CrossingGateIndices(c, Partition{CutPos: 1})
	if len(idx) != 2 || idx[0] != 2 || idx[1] != 4 {
		t.Fatalf("crossing = %v, want [2 4]", idx)
	}
}

func TestStandardPlanOneCutPerGate(t *testing.T) {
	c := circuit.New(4)
	c.Append(gate.RZZ(0.3, 1, 2), gate.RZZ(0.5, 1, 3), gate.CNOT(0, 1))
	plan, err := BuildPlan(c, Options{Partition: Partition{CutPos: 1}, Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cuts) != 2 {
		t.Fatalf("cuts = %d, want 2", len(plan.Cuts))
	}
	n, ok := plan.NumPaths()
	if !ok || n != 4 {
		t.Fatalf("paths = %d, want 4", n)
	}
	if plan.NumBlocks() != 0 || plan.NumSeparateCuts() != 2 {
		t.Fatal("standard plan should have only separate cuts")
	}
}

func TestCascadePlanGroupsSharedAnchor(t *testing.T) {
	// Three RZZ gates share qubit 2 across the cut at 2|3: one block, rank 2.
	c := circuit.New(6)
	c.Append(
		gate.RZZ(0.3, 2, 3),
		gate.RZZ(0.5, 2, 4),
		gate.RZZ(0.7, 2, 5),
		gate.RX(0.1, 0), // local noise
	)
	plan, err := BuildPlan(c, Options{Partition: Partition{CutPos: 2}, Strategy: StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cuts) != 1 {
		t.Fatalf("cuts = %d, want 1 block", len(plan.Cuts))
	}
	cp := plan.Cuts[0]
	if !cp.IsBlock() || cp.Rank() != 2 {
		t.Fatalf("block rank = %d (analytic=%v), want 2", cp.Rank(), cp.Analytic)
	}
	n, _ := plan.NumPaths()
	if n != 2 {
		t.Fatalf("joint paths = %d, want 2 (standard would be 8)", n)
	}
	if cp.LowerQubits[0] != 2 || len(cp.UpperQubits) != 3 {
		t.Fatalf("block qubits wrong: lower %v upper %v", cp.LowerQubits, cp.UpperQubits)
	}
}

func TestCascadeVsStandardPathReduction(t *testing.T) {
	// QAOA-like layer: anchors on both sides.
	c := circuit.New(6)
	c.Append(
		gate.RZZ(0.3, 2, 3), gate.RZZ(0.4, 2, 4), // anchor 2
		gate.RZZ(0.5, 1, 3), gate.RZZ(0.6, 0, 3), // anchor 3
	)
	p := Partition{CutPos: 2}
	std, err := BuildPlan(c, Options{Partition: p, Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	joint, err := BuildPlan(c, Options{Partition: p, Strategy: StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	ns, _ := std.NumPaths()
	nj, _ := joint.NumPaths()
	if ns != 16 {
		t.Fatalf("standard paths = %d, want 16", ns)
	}
	if nj >= ns {
		t.Fatalf("joint paths %d not fewer than standard %d", nj, ns)
	}
	if nj != 4 {
		t.Fatalf("joint paths = %d, want 4 (two rank-2 blocks)", nj)
	}
}

func TestAnalyticMatchesNumeric(t *testing.T) {
	c := circuit.New(5)
	c.Append(gate.RZZ(0.3, 1, 2), gate.RZZ(0.9, 1, 3), gate.RZZ(-0.4, 1, 4))
	p := Partition{CutPos: 1}
	num, err := BuildPlan(c, Options{Partition: p, Strategy: StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	ana, err := BuildPlan(c, Options{Partition: p, Strategy: StrategyCascade, UseAnalytic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(num.Cuts) != 1 || len(ana.Cuts) != 1 {
		t.Fatalf("cuts: numeric %d analytic %d, want 1 each", len(num.Cuts), len(ana.Cuts))
	}
	if !ana.Cuts[0].Analytic {
		t.Fatal("analytic decomposition not used")
	}
	if num.Cuts[0].Analytic {
		t.Fatal("numeric plan claims analytic")
	}
	if num.Cuts[0].Rank() != ana.Cuts[0].Rank() {
		t.Fatalf("rank mismatch: numeric %d analytic %d", num.Cuts[0].Rank(), ana.Cuts[0].Rank())
	}
	// Both must reconstruct the same operator: Σ σ X⊗Y equal entrywise.
	rec := func(cp *CutPoint) *cmat.Matrix {
		dim := 1 << (len(cp.LowerQubits) + len(cp.UpperQubits))
		out := cmat.New(dim, dim)
		for _, tm := range cp.Terms {
			out = cmat.Add(out, cmat.Scale(complex(tm.Sigma, 0), cmat.Kron(tm.Upper, tm.Lower)))
		}
		return out
	}
	if !cmat.EqualTol(rec(num.Cuts[0]), rec(ana.Cuts[0]), 1e-9) {
		t.Fatal("analytic and numeric blocks reconstruct different operators")
	}
}

func TestWindowGrouping(t *testing.T) {
	// Fig.3-style: consecutive crossing gates on a 4-qubit circuit, cut 1|2.
	c := circuit.New(4)
	c.Append(
		gate.CNOT(1, 2), gate.CZ(0, 2), gate.CNOT(3, 1), gate.SWAP(1, 2),
	)
	p := Partition{CutPos: 1}
	std, err := BuildPlan(c, Options{Partition: p, Strategy: StrategyNone})
	if err != nil {
		t.Fatal(err)
	}
	win, err := BuildPlan(c, Options{Partition: p, Strategy: StrategyWindow, MaxBlockQubits: 4})
	if err != nil {
		t.Fatal(err)
	}
	ns, _ := std.NumPaths()
	nw, _ := win.NumPaths()
	if ns != 2*2*2*4 {
		t.Fatalf("standard paths = %d, want 32", ns)
	}
	if nw > 16 {
		t.Fatalf("window paths = %d, want ≤ 16 (saturation bound)", nw)
	}
	if nw >= ns {
		t.Fatal("window grouping did not reduce paths")
	}
}

func TestInvalidGroupSplit(t *testing.T) {
	// An H on the shared qubit between two crossing RZZs forces them apart:
	// grouping would create a cycle, so the planner must fall back to
	// separate cuts.
	c := circuit.New(4)
	c.Append(gate.RZZ(0.3, 1, 2), gate.H(1), gate.RZZ(0.5, 1, 2))
	plan, err := BuildPlan(c, Options{Partition: Partition{CutPos: 1}, Strategy: StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cuts) != 2 {
		t.Fatalf("cuts = %d, want 2 separate (group is invalid)", len(plan.Cuts))
	}
	n, _ := plan.NumPaths()
	if n != 4 {
		t.Fatalf("paths = %d, want 4", n)
	}
}

func TestPlanStepOrderCoversAllGates(t *testing.T) {
	c := circuit.New(4)
	c.Append(gate.H(0), gate.RZZ(0.2, 1, 2), gate.RX(0.3, 3), gate.RZZ(0.4, 1, 3), gate.CNOT(0, 1))
	plan, err := BuildPlan(c, Options{Partition: Partition{CutPos: 1}, Strategy: StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	gates := 0
	for _, s := range plan.Steps {
		switch s.Kind {
		case LocalStep:
			gates++
		case CutStep:
			gates += len(s.Cut.GateIndices)
		}
	}
	if gates != len(c.Gates) {
		t.Fatalf("plan covers %d gates, circuit has %d", gates, len(c.Gates))
	}
}

func TestNumPathsOverflow(t *testing.T) {
	// 70 rank-2 cuts exceed 64 bits: NumPaths must saturate and report it.
	p := &Plan{}
	for i := 0; i < 70; i++ {
		p.Cuts = append(p.Cuts, &CutPoint{Terms: make([]schmidt.Term, 2)})
	}
	if _, ok := p.NumPaths(); ok {
		t.Fatal("overflow not reported")
	}
	if l := p.Log2Paths(); math.Abs(l-70) > 1e-9 {
		t.Fatalf("Log2Paths = %g, want 70", l)
	}
}

func TestGateSchmidtRank(t *testing.T) {
	p := Partition{CutPos: 0}
	g := gate.SWAP(0, 1)
	r, err := GateSchmidtRank(&g, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 4 {
		t.Fatalf("SWAP rank = %d", r)
	}
	g = gate.RZZ(0.4, 0, 1)
	r, err = GateSchmidtRank(&g, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 2 {
		t.Fatalf("RZZ rank = %d", r)
	}
}

func TestMaxBlockQubitsChunksCascade(t *testing.T) {
	// Anchor with 5 fan gates but a 3-qubit block budget: chunks of 2 fans.
	c := circuit.New(7)
	for i := 1; i <= 5; i++ {
		c.Append(gate.RZZ(0.1*float64(i), 0, i+1))
	}
	plan, err := BuildPlan(c, Options{Partition: Partition{CutPos: 0}, Strategy: StrategyCascade, MaxBlockQubits: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, cp := range plan.Cuts {
		if n := len(cp.LowerQubits) + len(cp.UpperQubits); n > 3 {
			t.Fatalf("block touches %d qubits, budget 3", n)
		}
	}
	// 5 fans in chunks of ≤2 fans: 2 blocks of 2 and 1 separate, or similar;
	// total paths must beat the standard 2^5 = 32.
	n, _ := plan.NumPaths()
	if n >= 32 {
		t.Fatalf("chunked cascade paths = %d, want < 32", n)
	}
}

func TestStandardPathCountHelper(t *testing.T) {
	c := circuit.New(4)
	c.Append(gate.RZZ(0.3, 1, 2), gate.SWAP(1, 2))
	n, l, err := StandardPathCount(c, Partition{CutPos: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("paths = %d, want 8", n)
	}
	if math.Abs(l-3) > 1e-9 {
		t.Fatalf("log2 = %g, want 3", l)
	}
}
