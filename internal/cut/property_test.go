package cut

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
)

// TestJointNeverWorseProperty fuzzes the central guarantee of the planner:
// for random circuits, cut positions, and strategies, the joint plan never
// needs more paths than the standard plan, and every plan covers every gate
// exactly once.
func TestJointNeverWorseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		c := circuit.New(n)
		gates := 8 + rng.Intn(16)
		for i := 0; i < gates; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(8) {
			case 0:
				c.Append(gate.H(a))
			case 1:
				c.Append(gate.RX(rng.Float64()*2, a))
			case 2:
				c.Append(gate.RZZ(rng.Float64()*2, a, b))
			case 3:
				c.Append(gate.CNOT(a, b))
			case 4:
				c.Append(gate.CZ(a, b))
			case 5:
				c.Append(gate.SWAP(a, b))
			case 6:
				c.Append(gate.ISWAP(a, b))
			default:
				c.Append(gate.CPhase(rng.Float64(), a, b))
			}
		}
		cutPos := rng.Intn(n - 1)
		p := Partition{CutPos: cutPos}
		std, err := BuildPlan(c, Options{Partition: p, Strategy: StrategyNone})
		if err != nil {
			return false
		}
		for _, strategy := range []Strategy{StrategyCascade, StrategyWindow} {
			jnt, err := BuildPlan(c, Options{
				Partition: p, Strategy: strategy,
				MaxBlockQubits: 3 + rng.Intn(4),
			})
			if err != nil {
				return false
			}
			if jnt.Log2Paths() > std.Log2Paths()+1e-9 {
				t.Logf("seed %d strategy %v: joint %.2f > standard %.2f",
					seed, strategy, jnt.Log2Paths(), std.Log2Paths())
				return false
			}
			if coveredGates(jnt) != len(c.Gates) {
				t.Logf("seed %d strategy %v: plan covers %d of %d gates",
					seed, strategy, coveredGates(jnt), len(c.Gates))
				return false
			}
		}
		return coveredGates(std) == len(c.Gates)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func coveredGates(p *Plan) int {
	n := 0
	for _, s := range p.Steps {
		switch s.Kind {
		case LocalStep:
			n++
		case CutStep:
			n += len(s.Cut.GateIndices)
		}
	}
	return n
}

// TestPlanRanksWithinBounds checks every cut's rank against the theoretical
// min(4^na, 4^nb) bound on random circuits.
func TestPlanRanksWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	for trial := 0; trial < 10; trial++ {
		c := circuit.New(6)
		for i := 0; i < 12; i++ {
			a := rng.Intn(6)
			b := (a + 1 + rng.Intn(5)) % 6
			c.Append(gate.RZZ(rng.Float64(), a, b))
		}
		plan, err := BuildPlan(c, Options{Partition: Partition{CutPos: 2}, Strategy: StrategyCascade})
		if err != nil {
			t.Fatal(err)
		}
		for _, cp := range plan.Cuts {
			na, nb := len(cp.UpperQubits), len(cp.LowerQubits)
			bound := 1 << (2 * min(na, nb))
			if cp.Rank() > bound {
				t.Fatalf("trial %d: rank %d exceeds bound %d (split %d|%d)",
					trial, cp.Rank(), bound, nb, na)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
