// Package cut implements the circuit-cutting layer of HSF simulation: it
// locates the gates that cross the chosen bipartition, groups them into
// joint-cut blocks (the paper's contribution), Schmidt-decomposes every cut,
// and emits an execution plan for the HSF engine.
package cut

import (
	"fmt"
	"math"
	"sort"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
	"hsfsim/internal/schmidt"
)

// Partition bipartitions the register: qubits 0..CutPos belong to the lower
// partition, qubits CutPos+1..n-1 to the upper one. This matches the paper's
// Table II "cut pos." column (the qubit label after which the cut happens).
type Partition struct {
	CutPos int
}

// NumLower returns the lower partition size for an n-qubit register.
func (p Partition) NumLower() int { return p.CutPos + 1 }

// NumUpper returns the upper partition size for an n-qubit register.
func (p Partition) NumUpper(n int) int { return n - p.CutPos - 1 }

// IsLower reports whether qubit q is in the lower partition.
func (p Partition) IsLower(q int) bool { return q <= p.CutPos }

// Crosses reports whether g touches both partitions.
func (p Partition) Crosses(g *gate.Gate) bool {
	lo, up := false, false
	for _, q := range g.Qubits {
		if p.IsLower(q) {
			lo = true
		} else {
			up = true
		}
	}
	return lo && up
}

// Validate checks the partition against a register size.
func (p Partition) Validate(numQubits int) error {
	if p.CutPos < 0 || p.CutPos >= numQubits-1 {
		return fmt.Errorf("cut: position %d leaves an empty partition for %d qubits", p.CutPos, numQubits)
	}
	return nil
}

// Side identifies one of the two partitions.
type Side int

// Partition sides.
const (
	Lower Side = iota
	Upper
)

func (s Side) String() string {
	if s == Lower {
		return "lower"
	}
	return "upper"
}

// StepKind distinguishes plan steps.
type StepKind int

// Plan step kinds.
const (
	// LocalStep applies one gate inside a single partition.
	LocalStep StepKind = iota
	// CutStep branches over the Schmidt terms of a cut gate or block.
	CutStep
)

// CutPoint is one cut in the plan: a decomposed gate or block with the
// original qubit labels its terms act on.
type CutPoint struct {
	// Terms are the Schmidt summands σ_m X_m ⊗ Y_m.
	Terms []schmidt.Term
	// LowerQubits / UpperQubits are the block's touched qubits on each side,
	// sorted ascending, in original circuit labels. Term.Lower matrices use
	// LowerQubits[k] as bit k; Term.Upper matrices use UpperQubits[k] as bit k.
	LowerQubits []int
	UpperQubits []int
	// GateIndices are the indices (in the planned order) of the member gates.
	GateIndices []int
	// Label describes the cut for reporting ("block[rzz x3]" or "sep[swap]").
	Label string
	// Analytic records that an analytic cascade decomposition was used
	// instead of a numeric SVD.
	Analytic bool
	// Truncated records that Schmidt terms were dropped (Options.MaxCutRank),
	// making the overall simulation approximate.
	Truncated bool
}

// Rank returns the number of Schmidt terms of the cut.
func (c *CutPoint) Rank() int { return len(c.Terms) }

// IsBlock reports whether the cut covers more than one gate.
func (c *CutPoint) IsBlock() bool { return len(c.GateIndices) > 1 }

// Step is one element of an HSF execution plan.
type Step struct {
	Kind StepKind
	// Side and Gate are set for LocalStep.
	Side Side
	Gate gate.Gate
	// Cut is set for CutStep.
	Cut *CutPoint
}

// Plan is a complete HSF execution plan: an ordered interleaving of local
// gates and cut points, equivalent to the original circuit.
type Plan struct {
	NumQubits int
	Partition Partition
	Steps     []Step
	Cuts      []*CutPoint
}

// NumPaths returns the total path count ∏ r_i. The second return value is
// false when the product overflows uint64 (use Log2Paths then).
func (p *Plan) NumPaths() (uint64, bool) {
	n := uint64(1)
	for _, c := range p.Cuts {
		r := uint64(c.Rank())
		if r != 0 && n > math.MaxUint64/r {
			return math.MaxUint64, false
		}
		n *= r
	}
	return n, true
}

// Log2Paths returns log2 of the path count.
func (p *Plan) Log2Paths() float64 {
	var l float64
	for _, c := range p.Cuts {
		l += math.Log2(float64(c.Rank()))
	}
	return l
}

// NumBlocks counts joint-cut blocks (cuts covering more than one gate).
func (p *Plan) NumBlocks() int {
	n := 0
	for _, c := range p.Cuts {
		if c.IsBlock() {
			n++
		}
	}
	return n
}

// NumSeparateCuts counts cuts covering a single gate.
func (p *Plan) NumSeparateCuts() int { return len(p.Cuts) - p.NumBlocks() }

// CrossingGateIndices returns the indices of the gates in c that cross the
// partition.
func CrossingGateIndices(c *circuit.Circuit, p Partition) []int {
	var idx []int
	for i := range c.Gates {
		if p.Crosses(&c.Gates[i]) {
			idx = append(idx, i)
		}
	}
	return idx
}

// splitQubits returns the sorted touched lower and upper qubits of a set of
// gates.
func splitQubits(c *circuit.Circuit, p Partition, gateIdx []int) (lower, upper []int) {
	seen := make(map[int]bool)
	for _, gi := range gateIdx {
		for _, q := range c.Gates[gi].Qubits {
			if seen[q] {
				continue
			}
			seen[q] = true
			if p.IsLower(q) {
				lower = append(lower, q)
			} else {
				upper = append(upper, q)
			}
		}
	}
	sort.Ints(lower)
	sort.Ints(upper)
	return lower, upper
}
