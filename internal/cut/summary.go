package cut

import (
	"encoding/json"
	"io"
)

// Summary is a serializable description of a plan, consumed by external
// tooling (dashboards, notebooks) through cmd/paths -json.
type Summary struct {
	NumQubits       int          `json:"num_qubits"`
	CutPos          int          `json:"cut_pos"`
	NumPaths        uint64       `json:"num_paths"`
	NumPathsExact   bool         `json:"num_paths_exact"`
	Log2Paths       float64      `json:"log2_paths"`
	NumCuts         int          `json:"num_cuts"`
	NumBlocks       int          `json:"num_blocks"`
	NumSeparateCuts int          `json:"num_separate_cuts"`
	Cuts            []CutSummary `json:"cuts"`
}

// CutSummary describes one cut point.
type CutSummary struct {
	Label       string  `json:"label"`
	Rank        int     `json:"rank"`
	Block       bool    `json:"block"`
	Analytic    bool    `json:"analytic"`
	NumGates    int     `json:"num_gates"`
	LowerQubits []int   `json:"lower_qubits"`
	UpperQubits []int   `json:"upper_qubits"`
	TopSigma    float64 `json:"top_sigma"`
}

// Summarize builds the serializable description of the plan.
func (p *Plan) Summarize() Summary {
	n, exact := p.NumPaths()
	s := Summary{
		NumQubits:       p.NumQubits,
		CutPos:          p.Partition.CutPos,
		NumPaths:        n,
		NumPathsExact:   exact,
		Log2Paths:       p.Log2Paths(),
		NumCuts:         len(p.Cuts),
		NumBlocks:       p.NumBlocks(),
		NumSeparateCuts: p.NumSeparateCuts(),
	}
	for _, c := range p.Cuts {
		cs := CutSummary{
			Label:       c.Label,
			Rank:        c.Rank(),
			Block:       c.IsBlock(),
			Analytic:    c.Analytic,
			NumGates:    len(c.GateIndices),
			LowerQubits: c.LowerQubits,
			UpperQubits: c.UpperQubits,
		}
		if len(c.Terms) > 0 {
			cs.TopSigma = c.Terms[0].Sigma
		}
		s.Cuts = append(s.Cuts, cs)
	}
	return s
}

// WriteJSON writes the summary as indented JSON.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Summarize())
}
