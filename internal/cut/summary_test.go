package cut

import (
	"bytes"
	"encoding/json"
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
)

func TestSummarizeAndJSON(t *testing.T) {
	c := circuit.New(5)
	c.Append(
		gate.RZZ(0.3, 1, 2), gate.RZZ(0.4, 1, 3), // cascade block
		gate.SWAP(0, 4), // separate, rank 4
	)
	plan, err := BuildPlan(c, Options{Partition: Partition{CutPos: 1}, Strategy: StrategyCascade})
	if err != nil {
		t.Fatal(err)
	}
	s := plan.Summarize()
	if s.NumQubits != 5 || s.CutPos != 1 {
		t.Fatalf("header wrong: %+v", s)
	}
	if s.NumCuts != 2 || s.NumBlocks != 1 || s.NumSeparateCuts != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.NumPaths != 8 || !s.NumPathsExact {
		t.Fatalf("paths = %d exact=%v, want 8 exact", s.NumPaths, s.NumPathsExact)
	}
	foundBlock := false
	for _, cs := range s.Cuts {
		if cs.Block {
			foundBlock = true
			if cs.Rank != 2 || cs.NumGates != 2 {
				t.Fatalf("block summary wrong: %+v", cs)
			}
			if cs.TopSigma <= 0 {
				t.Fatal("missing top sigma")
			}
		}
	}
	if !foundBlock {
		t.Fatal("no block in summary")
	}

	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Summary
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if round.NumCuts != s.NumCuts || round.Log2Paths != s.Log2Paths {
		t.Fatal("JSON round trip lost fields")
	}
}
