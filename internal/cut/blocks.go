package cut

import (
	"sort"

	"hsfsim/internal/circuit"
)

// Strategy selects how crossing gates are grouped into joint-cut blocks.
type Strategy int

// Grouping strategies.
const (
	// StrategyNone performs state-of-the-art standard cutting: every
	// crossing gate is cut separately.
	StrategyNone Strategy = iota
	// StrategyCascade reassembles cascades: crossing two-qubit gates sharing
	// a single anchor qubit on one side of the cut are grouped (the paper's
	// brute-force grouping used for the QAOA evaluation, cf. Fig. 6).
	StrategyCascade
	// StrategyWindow grows fusion-style windows around crossing gates,
	// absorbing local gates on the window's qubits, bounded by
	// MaxBlockQubits. Suited to supremacy-style circuits and the Fig. 3
	// example, where consecutive crossing gates share boundary qubits.
	StrategyWindow
)

func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "standard"
	case StrategyCascade:
		return "cascade"
	case StrategyWindow:
		return "window"
	default:
		return "unknown"
	}
}

// DefaultMaxBlockQubits caps the number of qubits a joint-cut block may
// touch. Paper Sec. IV-C: blocks must stay small relative to the circuit or
// the O(D³) Schmidt preprocessing dominates the saved simulation time.
const DefaultMaxBlockQubits = 8

// groupCascades implements StrategyCascade. It returns groups of crossing
// gate indices (each of size ≥ 2) such that all gates in a group are
// two-qubit gates sharing one anchor qubit, with at most maxBlockQubits
// touched qubits per group. The remaining crossing gates stay separate.
//
// The search is the paper's brute-force reassembly: every qubit is scored by
// how many still-ungrouped crossing gates it anchors; the best anchor is
// collected into a block, and the scan repeats until no anchor holds two or
// more gates.
func groupCascades(c *circuit.Circuit, p Partition, crossing []int, maxBlockQubits int) [][]int {
	grouped := make(map[int]bool)
	var groups [][]int
	for {
		// Score anchors over ungrouped two-qubit crossing gates.
		count := make(map[int][]int) // anchor qubit -> gate indices
		for _, gi := range crossing {
			if grouped[gi] {
				continue
			}
			g := &c.Gates[gi]
			if g.NumQubits() != 2 {
				continue
			}
			for _, q := range g.Qubits {
				count[q] = append(count[q], gi)
			}
		}
		bestAnchor, bestN := -1, 1
		for q, gis := range count {
			if len(gis) > bestN || (len(gis) == bestN && bestAnchor != -1 && q < bestAnchor) {
				bestAnchor, bestN = q, len(gis)
			}
		}
		if bestAnchor == -1 || bestN < 2 {
			return groups
		}
		gis := count[bestAnchor]
		sort.Ints(gis)
		// Chunk to respect the block qubit budget: anchor + fan qubits. Two
		// gates may share a fan qubit, so count distinct qubits as we go.
		var cur []int
		qubits := map[int]bool{bestAnchor: true}
		flush := func() {
			if len(cur) >= 2 {
				groups = append(groups, cur)
			}
			for _, gi := range cur {
				grouped[gi] = true
			}
			cur = nil
			qubits = map[int]bool{bestAnchor: true}
		}
		for _, gi := range gis {
			g := &c.Gates[gi]
			added := 0
			for _, q := range g.Qubits {
				if !qubits[q] {
					added++
				}
			}
			if len(qubits)+added > maxBlockQubits {
				flush()
			}
			for _, q := range g.Qubits {
				qubits[q] = true
			}
			cur = append(cur, gi)
		}
		flush()
	}
}

// window is an open grouping cluster for StrategyWindow.
type window struct {
	qubits   map[int]bool
	members  []int // gate indices in circuit order
	crossing int   // crossing members among them
}

// groupWindows implements StrategyWindow with fusion-style active clusters:
// a crossing gate opens or extends a window; local gates are absorbed while
// the window's touched-qubit budget holds, letting blocks span e.g. two
// entangling layers with single-qubit gates in between (the supremacy-style
// use case of paper Sec. V). Windows holding ≥ 2 crossing gates become
// groups; the rest dissolve.
func groupWindows(c *circuit.Circuit, p Partition, maxBlockQubits int) [][]int {
	var groups [][]int
	active := make(map[int]*window) // qubit -> open window

	closeWindow := func(w *window) {
		if w.crossing >= 2 {
			groups = append(groups, w.members)
		}
		for q := range w.qubits {
			if active[q] == w {
				delete(active, q)
			}
		}
	}

	for gi := range c.Gates {
		g := &c.Gates[gi]
		// Distinct windows touching g.
		var touched []*window
		seen := make(map[*window]bool)
		for _, q := range g.Qubits {
			if w, ok := active[q]; ok && !seen[w] {
				seen[w] = true
				touched = append(touched, w)
			}
		}
		crossing := p.Crosses(g)
		if !crossing && len(touched) == 0 {
			continue // purely local gate away from any window
		}
		// Union size if everything merges.
		union := make(map[int]bool)
		for _, q := range g.Qubits {
			union[q] = true
		}
		for _, w := range touched {
			for q := range w.qubits {
				union[q] = true
			}
		}
		if len(union) <= maxBlockQubits {
			var target *window
			if len(touched) > 0 {
				target = touched[0]
				for _, w := range touched[1:] {
					target.members = append(target.members, w.members...)
					target.crossing += w.crossing
					for q := range w.qubits {
						if active[q] == w {
							active[q] = target
						}
						target.qubits[q] = true
					}
				}
			} else {
				target = &window{qubits: make(map[int]bool)}
			}
			target.members = append(target.members, gi)
			if crossing {
				target.crossing++
			}
			for _, q := range g.Qubits {
				target.qubits[q] = true
				active[q] = target
			}
			sort.Ints(target.members)
			continue
		}
		// Budget exceeded: close the touched windows; a crossing gate opens
		// a fresh window of its own.
		for _, w := range touched {
			closeWindow(w)
		}
		if crossing && g.NumQubits() <= maxBlockQubits {
			w := &window{qubits: make(map[int]bool), members: []int{gi}, crossing: 1}
			for _, q := range g.Qubits {
				w.qubits[q] = true
				active[q] = w
			}
		}
	}
	// Close the rest deterministically (by first member).
	var rest []*window
	seen := make(map[*window]bool)
	for _, w := range active {
		if !seen[w] {
			seen[w] = true
			rest = append(rest, w)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].members[0] < rest[j].members[0] })
	for _, w := range rest {
		closeWindow(w)
	}
	return groups
}

// splitGroupValid splits a group whose contraction is cyclic into maximal
// valid prefixes: members are added greedily while the singleton contraction
// of the running subgroup stays acyclic. Subgroups of size 1 dissolve.
func splitGroupValid(dag *circuit.DependencyDAG, group []int) [][]int {
	var out [][]int
	var cur []int
	flush := func() {
		if len(cur) >= 2 {
			out = append(out, cur)
		}
		cur = nil
	}
	for _, m := range group {
		cand := append(append([]int(nil), cur...), m)
		if _, ok := dag.ContractAndOrder([][]int{cand}); ok {
			cur = cand
			continue
		}
		flush()
		cur = []int{m}
	}
	flush()
	return out
}

// buildGroups dispatches on the strategy and filters the proposed groups
// through the commutation DAG: an individually-invalid group is split into
// maximal valid subgroups; remaining inter-group conflicts drop the largest
// offender. It returns the surviving groups and the gate order that makes
// every group contiguous.
func buildGroups(c *circuit.Circuit, p Partition, strategy Strategy, maxBlockQubits int) (groups [][]int, order []int, err error) {
	switch strategy {
	case StrategyNone:
		groups = nil
	case StrategyCascade:
		groups = groupCascades(c, p, CrossingGateIndices(c, p), maxBlockQubits)
	case StrategyWindow:
		groups = groupWindows(c, p, maxBlockQubits)
	}

	return resolveGroups(circuit.BuildDAG(c), groups)
}

// resolveGroups validates proposed groups against the dependency DAG: an
// individually-invalid group is split into maximal valid subgroups, and
// remaining inter-group conflicts drop the largest offender until the joint
// contraction is acyclic.
func resolveGroups(dag *circuit.DependencyDAG, groups [][]int) ([][]int, []int, error) {
	var valid [][]int
	for _, g := range groups {
		if _, ok := dag.ContractAndOrder([][]int{g}); ok {
			valid = append(valid, g)
		} else {
			valid = append(valid, splitGroupValid(dag, g)...)
		}
	}
	groups = valid

	for {
		order, ok := dag.ContractAndOrder(groups)
		if ok {
			return groups, order, nil
		}
		if len(groups) == 0 {
			// Cannot happen: the identity order always satisfies the DAG.
			panic("cut: dependency DAG of a circuit is cyclic")
		}
		largest := 0
		for i, g := range groups {
			if len(g) > len(groups[largest]) {
				largest = i
			}
		}
		groups = append(groups[:largest], groups[largest+1:]...)
	}
}
