package cut

import (
	"fmt"

	"hsfsim/internal/circuit"
)

// CutCandidate scores one possible cut position.
type CutCandidate struct {
	CutPos    int
	Crossing  int
	Log2Paths float64
	Blocks    int
}

// FindBestCut evaluates every cut position within balance·n of the middle
// and returns the one minimizing the joint-cut path count (ties: the most
// balanced). balance 0 selects 0.25, i.e. partitions between 25% and 75% of
// the register; the memory saving of HSF degrades as the cut drifts off
// center, so wildly unbalanced cuts are excluded.
func FindBestCut(c *circuit.Circuit, strategy Strategy, maxBlockQubits int, balance float64) (*CutCandidate, []CutCandidate, error) {
	if c.NumQubits < 2 {
		return nil, nil, fmt.Errorf("cut: cannot cut a %d-qubit circuit", c.NumQubits)
	}
	if balance <= 0 || balance > 0.5 {
		balance = 0.25
	}
	lo := int(float64(c.NumQubits)*balance) - 1
	hi := int(float64(c.NumQubits)*(1-balance)) - 1
	if lo < 0 {
		lo = 0
	}
	if hi > c.NumQubits-2 {
		hi = c.NumQubits - 2
	}
	mid := float64(c.NumQubits-1)/2 - 0.5

	var all []CutCandidate
	var best *CutCandidate
	for pos := lo; pos <= hi; pos++ {
		p := Partition{CutPos: pos}
		plan, err := BuildPlan(c, Options{Partition: p, Strategy: strategy, MaxBlockQubits: maxBlockQubits})
		if err != nil {
			return nil, nil, err
		}
		cand := CutCandidate{
			CutPos:    pos,
			Crossing:  len(CrossingGateIndices(c, p)),
			Log2Paths: plan.Log2Paths(),
			Blocks:    plan.NumBlocks(),
		}
		all = append(all, cand)
		if best == nil || cand.Log2Paths < best.Log2Paths ||
			(cand.Log2Paths == best.Log2Paths && absF(float64(pos)-mid) < absF(float64(best.CutPos)-mid)) {
			b := cand
			best = &b
		}
	}
	return best, all, nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
