package cut

import (
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
)

func TestFindBestCutPrefersSparseBoundary(t *testing.T) {
	// Two dense 4-qubit clusters {0..3}, {4..7} with one weak link: the best
	// cut is after qubit 3.
	c := circuit.New(8)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			c.Append(gate.RZZ(0.3, a, b))
			c.Append(gate.RZZ(0.4, a+4, b+4))
		}
	}
	c.Append(gate.RZZ(0.5, 3, 4))
	best, all, err := FindBestCut(c, StrategyCascade, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if best.CutPos != 3 {
		t.Fatalf("best cut = %d, want 3 (candidates %+v)", best.CutPos, all)
	}
	if best.Crossing != 1 {
		t.Fatalf("crossing = %d, want 1", best.Crossing)
	}
	if len(all) == 0 {
		t.Fatal("no candidates returned")
	}
}

func TestFindBestCutBalanceWindow(t *testing.T) {
	c := circuit.New(8)
	c.Append(gate.RZZ(0.2, 0, 7))
	_, all, err := FindBestCut(c, StrategyCascade, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range all {
		if cand.CutPos < 1 || cand.CutPos > 5 {
			t.Fatalf("candidate %d outside the 25%%-75%% balance window", cand.CutPos)
		}
	}
}

func TestFindBestCutErrors(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.H(0))
	if _, _, err := FindBestCut(c, StrategyCascade, 0, 0.25); err == nil {
		t.Fatal("single-qubit circuit accepted")
	}
}

func TestFindBestCutTieBreakPrefersCenter(t *testing.T) {
	// No multi-qubit gates at all: every cut has 0 paths; the middle wins.
	c := circuit.New(9)
	for q := 0; q < 9; q++ {
		c.Append(gate.H(q))
	}
	best, _, err := FindBestCut(c, StrategyCascade, 0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if best.CutPos != 3 && best.CutPos != 4 {
		t.Fatalf("best cut = %d, want near center", best.CutPos)
	}
}
