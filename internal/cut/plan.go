package cut

import (
	"fmt"
	"sort"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
	"hsfsim/internal/schmidt"
)

// Options configures plan construction.
type Options struct {
	// Partition places the cut.
	Partition Partition
	// Strategy selects the grouping scheme (StrategyNone = standard HSF).
	Strategy Strategy
	// MaxBlockQubits caps the touched-qubit count of a block; 0 selects
	// DefaultMaxBlockQubits.
	MaxBlockQubits int
	// Tol is the singular-value truncation tolerance; 0 selects
	// schmidt.DefaultTol.
	Tol float64
	// UseAnalytic replaces the numeric SVD by the analytic rank-2 cascade
	// decomposition when a block matches a known cascade pattern
	// (paper Sec. IV-D). The paper's evaluation keeps this off ("the joint
	// cuts were performed numerically") — it is provided for the ablation.
	UseAnalytic bool
	// MaxCutRank, when positive, truncates every cut to its MaxCutRank
	// largest Schmidt terms, yielding an *approximate* simulation: the
	// dropped weight Σσ² bounds the error. This extension trades fidelity
	// for paths and is off (exact) by default.
	MaxCutRank int
}

// BuildPlan analyzes the circuit and produces an HSF execution plan.
func BuildPlan(c *circuit.Circuit, opts Options) (*Plan, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Partition.Validate(c.NumQubits); err != nil {
		return nil, err
	}
	maxBlock := opts.MaxBlockQubits
	if maxBlock <= 0 {
		maxBlock = DefaultMaxBlockQubits
	}

	groups, order, err := buildGroups(c, opts.Partition, opts.Strategy, maxBlock)
	if err != nil {
		return nil, err
	}
	rc := c.Reorder(order)
	newPos := make([]int, len(order)) // original index -> new position
	for np, oi := range order {
		newPos[oi] = np
	}

	// groupOf[new position] = group id, or -1.
	groupOf := make([]int, len(rc.Gates))
	for i := range groupOf {
		groupOf[i] = -1
	}
	groupMembers := make([][]int, len(groups)) // new positions, sorted
	for gi, grp := range groups {
		for _, oi := range grp {
			np := newPos[oi]
			groupOf[np] = gi
			groupMembers[gi] = append(groupMembers[gi], np)
		}
		sort.Ints(groupMembers[gi])
	}

	plan := &Plan{NumQubits: c.NumQubits, Partition: opts.Partition}
	emitted := make([]bool, len(rc.Gates))

	emitSingle := func(np int) error {
		g := &rc.Gates[np]
		emitted[np] = true
		if !opts.Partition.Crosses(g) {
			side := Upper
			if opts.Partition.IsLower(g.Qubits[0]) {
				side = Lower
			}
			plan.Steps = append(plan.Steps, Step{Kind: LocalStep, Side: side, Gate: *g})
			return nil
		}
		cp, err := decomposeBlock(rc, opts, []int{np})
		if err != nil {
			return err
		}
		plan.Steps = append(plan.Steps, Step{Kind: CutStep, Cut: cp})
		plan.Cuts = append(plan.Cuts, cp)
		return nil
	}

	for np := range rc.Gates {
		if emitted[np] {
			continue
		}
		gi := groupOf[np]
		if gi < 0 {
			if err := emitSingle(np); err != nil {
				return nil, err
			}
			continue
		}
		// First member of a block: decompose jointly and keep the block only
		// if it strictly reduces the path contribution versus cutting its
		// crossing members separately (Sec. IV-C: otherwise the SVD
		// preprocessing is pure overhead).
		members := groupMembers[gi]
		cp, err := decomposeBlock(rc, opts, members)
		if err != nil {
			return nil, err
		}
		separate := 1
		for _, m := range members {
			g := &rc.Gates[m]
			if !opts.Partition.Crosses(g) {
				continue
			}
			r, err := GateSchmidtRank(g, opts.Partition, opts.Tol)
			if err != nil {
				return nil, err
			}
			separate *= r
			if separate > 1<<30 {
				break // saturate; the block certainly wins
			}
		}
		if cp.Rank() < separate {
			plan.Steps = append(plan.Steps, Step{Kind: CutStep, Cut: cp})
			plan.Cuts = append(plan.Cuts, cp)
			for _, m := range members {
				emitted[m] = true
			}
			continue
		}
		// Not beneficial: emit the members individually in order.
		for _, m := range members {
			if err := emitSingle(m); err != nil {
				return nil, err
			}
		}
	}
	return plan, nil
}

// decomposeBlock builds the joint operator of the member gates (indices into
// rc, sorted) and Schmidt-decomposes it across the partition.
func decomposeBlock(rc *circuit.Circuit, opts Options, members []int) (*CutPoint, error) {
	lowerQ, upperQ := splitQubits(rc, opts.Partition, members)
	touched := append(append([]int(nil), lowerQ...), upperQ...)
	pos := make(map[int]int, len(touched))
	for k, q := range touched {
		pos[q] = k
	}

	label := blockLabel(rc, members)
	cp := &CutPoint{LowerQubits: lowerQ, UpperQubits: upperQ, GateIndices: members, Label: label}

	if opts.UseAnalytic && len(members) >= 2 {
		if d, ok := analyticCascade(rc, opts.Partition, members, lowerQ, upperQ); ok {
			cp.Terms = d.Terms
			cp.Analytic = true
			return cp, nil
		}
	}

	// Numeric path: multiply the member gates on the touched-qubit register
	// (lower qubits occupy the low bits because labels sort that way), then
	// decompose.
	block := circuit.New(len(touched))
	for _, m := range members {
		block.Append(rc.Gates[m].Remap(func(q int) int { return pos[q] }))
	}
	op := block.Unitary()
	d, err := schmidt.Decompose(op, len(lowerQ), len(upperQ), opts.Tol)
	if err != nil {
		return nil, fmt.Errorf("cut: decomposing %s: %w", label, err)
	}
	cp.Terms = d.Terms
	if opts.MaxCutRank > 0 && len(cp.Terms) > opts.MaxCutRank {
		cp.Terms = cp.Terms[:opts.MaxCutRank]
		cp.Truncated = true
	}
	return cp, nil
}

// blockLabel summarizes a block for reports, e.g. "block[rzz x3]".
func blockLabel(rc *circuit.Circuit, members []int) string {
	if len(members) == 1 {
		return "sep[" + rc.Gates[members[0]].Name + "]"
	}
	names := make(map[string]int)
	for _, m := range members {
		names[rc.Gates[m].Name]++
	}
	if len(names) == 1 {
		return fmt.Sprintf("block[%s x%d]", rc.Gates[members[0]].Name, len(members))
	}
	return fmt.Sprintf("block[mixed x%d]", len(members))
}

// analyticCascade recognizes cascade patterns and returns their analytic
// decomposition: all members must be two-qubit gates of the same kind
// sharing one anchor qubit, with pairwise-distinct fan qubits. CNOT cascades
// additionally require the anchor to be every member's control.
func analyticCascade(rc *circuit.Circuit, p Partition, members []int, lowerQ, upperQ []int) (*schmidt.Decomposition, bool) {
	if len(lowerQ) == 0 || len(upperQ) == 0 {
		return nil, false
	}
	var anchor int
	var anchorUpper bool
	switch {
	case len(upperQ) == 1:
		anchor = upperQ[0]
		anchorUpper = true
	case len(lowerQ) == 1:
		anchor = lowerQ[0]
		anchorUpper = false
	default:
		return nil, false
	}
	name := rc.Gates[members[0]].Name
	fanTheta := make(map[int]float64, len(members))
	for _, m := range members {
		g := &rc.Gates[m]
		if g.Name != name || g.NumQubits() != 2 || !g.Touches(anchor) {
			return nil, false
		}
		fan := g.Qubits[0]
		if fan == anchor {
			fan = g.Qubits[1]
		}
		if _, dup := fanTheta[fan]; dup {
			return nil, false // repeated fan qubit: product form needed
		}
		switch name {
		case "rzz", "cp":
			fanTheta[fan] = g.Params[0]
		case "cz":
			fanTheta[fan] = 0
		case "cx":
			if g.Qubits[0] != anchor { // control must be the anchor
				return nil, false
			}
			fanTheta[fan] = 0
		default:
			return nil, false
		}
	}
	// Fan qubits in ascending label order supply the kron-chain bits.
	fans := lowerQ
	if !anchorUpper {
		fans = upperQ
	}
	if len(fans) != len(fanTheta) {
		return nil, false
	}
	switch name {
	case "rzz":
		thetas := make([]float64, len(fans))
		for i, f := range fans {
			thetas[i] = fanTheta[f]
		}
		return schmidt.RZZCascade(thetas, anchorUpper), true
	case "cp":
		phis := make([]float64, len(fans))
		for i, f := range fans {
			phis[i] = fanTheta[f]
		}
		return schmidt.CPhaseCascade(phis, anchorUpper), true
	case "cz":
		return schmidt.CZCascade(len(fans), anchorUpper), true
	case "cx":
		return schmidt.CNOTCascade(len(fans), anchorUpper), true
	}
	return nil, false
}

// StandardPathCount returns the number of paths of the standard (per-gate)
// cutting scheme, together with its log2. It is cheaper than building a full
// plan when only the count is needed, but matches BuildPlan with
// StrategyNone exactly.
func StandardPathCount(c *circuit.Circuit, p Partition, tol float64) (uint64, float64, error) {
	plan, err := BuildPlan(c, Options{Partition: p, Strategy: StrategyNone, Tol: tol})
	if err != nil {
		return 0, 0, err
	}
	n, _ := plan.NumPaths()
	return n, plan.Log2Paths(), nil
}

// GateSchmidtRank computes the Schmidt rank of a single gate across the
// partition.
func GateSchmidtRank(g *gate.Gate, p Partition, tol float64) (int, error) {
	var lowerQ, upperQ []int
	for _, q := range g.Qubits {
		if p.IsLower(q) {
			lowerQ = append(lowerQ, q)
		} else {
			upperQ = append(upperQ, q)
		}
	}
	sort.Ints(lowerQ)
	sort.Ints(upperQ)
	touched := append(append([]int(nil), lowerQ...), upperQ...)
	pos := make(map[int]int, len(touched))
	for k, q := range touched {
		pos[q] = k
	}
	local := g.Remap(func(q int) int { return pos[q] })
	op := circuit.EmbedOnQubits(&local, localIota(len(touched)))
	return schmidt.OperatorSchmidtRank(op, len(lowerQ), len(upperQ), tol)
}

func localIota(n int) []int {
	r := make([]int, n)
	for i := range r {
		r[i] = i
	}
	return r
}
