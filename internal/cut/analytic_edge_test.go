package cut

import (
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
)

// These tests pin the fall-back behaviour of the analytic-cascade
// recognizer: whenever the pattern does not match exactly, the planner must
// silently use the numeric SVD and still produce a correct plan.

func analyticPlan(t *testing.T, c *circuit.Circuit, cutPos int) *Plan {
	t.Helper()
	plan, err := BuildPlan(c, Options{
		Partition: Partition{CutPos: cutPos}, Strategy: StrategyCascade, UseAnalytic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestAnalyticFallbackMixedGateKinds(t *testing.T) {
	// rzz + cz sharing an anchor: valid block, but mixed kinds force the
	// numeric path.
	c := circuit.New(4)
	c.Append(gate.RZZ(0.3, 1, 2), gate.CZ(1, 3))
	plan := analyticPlan(t, c, 1)
	if len(plan.Cuts) != 1 {
		t.Fatalf("cuts = %d", len(plan.Cuts))
	}
	if plan.Cuts[0].Analytic {
		t.Fatal("mixed-kind block must not use the analytic form")
	}
	if plan.Cuts[0].Rank() != 2 {
		t.Fatalf("rank = %d, want 2", plan.Cuts[0].Rank())
	}
}

func TestAnalyticFallbackRepeatedFan(t *testing.T) {
	// Two RZZ on the same pair: repeated fan qubit needs the product form,
	// so the numeric path must be taken.
	c := circuit.New(3)
	c.Append(gate.RZZ(0.3, 1, 2), gate.RZZ(0.5, 1, 2))
	plan := analyticPlan(t, c, 1)
	if len(plan.Cuts) != 1 {
		t.Fatalf("cuts = %d", len(plan.Cuts))
	}
	if plan.Cuts[0].Analytic {
		t.Fatal("repeated-fan block must not use the analytic form")
	}
	// Product of two RZZ on the same pair is a single RZZ: rank 2.
	if plan.Cuts[0].Rank() != 2 {
		t.Fatalf("rank = %d, want 2", plan.Cuts[0].Rank())
	}
}

func TestAnalyticFallbackCNOTControlOnFan(t *testing.T) {
	// CNOTs sharing their *target* (anchor = target): Eq. 11 needs the
	// control as the anchor, so the numeric path applies. The joint rank of
	// shared-target CNOTs is still 2 (conjugate by H⊗H of the shared-control
	// case).
	c := circuit.New(4)
	c.Append(gate.CNOT(2, 1), gate.CNOT(3, 1)) // controls upper, target 1 lower
	plan := analyticPlan(t, c, 1)
	if len(plan.Cuts) != 1 {
		t.Fatalf("cuts = %d", len(plan.Cuts))
	}
	cp := plan.Cuts[0]
	if cp.Analytic {
		t.Fatal("shared-target CNOT block must not use Eq. 11")
	}
	if cp.Rank() != 2 {
		t.Fatalf("rank = %d, want 2", cp.Rank())
	}
}

func TestAnalyticCPhaseCascadeUsed(t *testing.T) {
	c := circuit.New(4)
	c.Append(gate.CPhase(0.4, 1, 2), gate.CPhase(0.8, 1, 3))
	plan := analyticPlan(t, c, 1)
	if len(plan.Cuts) != 1 || !plan.Cuts[0].Analytic {
		t.Fatal("cp cascade should use the analytic decomposition")
	}
	if plan.Cuts[0].Rank() != 2 {
		t.Fatalf("rank = %d, want 2", plan.Cuts[0].Rank())
	}
}

func TestAnalyticAnchorOnLowerSide(t *testing.T) {
	// Anchor in the lower partition, fans above: anchorUpper = false branch.
	c := circuit.New(4)
	c.Append(gate.RZZ(0.3, 0, 2), gate.RZZ(0.5, 0, 3))
	plan := analyticPlan(t, c, 1)
	if len(plan.Cuts) != 1 || !plan.Cuts[0].Analytic {
		t.Fatal("lower-anchor cascade should be analytic")
	}
}

func TestAnalyticSkipsThreeQubitMembers(t *testing.T) {
	// A window-style group is never proposed here, but a cascade block must
	// reject non-2-qubit members gracefully. Build a CCZ sharing qubits with
	// an RZZ; the cascade strategy only groups 2-qubit gates, so the CCZ is
	// cut separately and the plan still works.
	c := circuit.New(5)
	c.Append(gate.RZZ(0.2, 1, 2), gate.RZZ(0.4, 1, 3), gate.CCZ(0, 1, 4))
	plan := analyticPlan(t, c, 1)
	if plan.NumBlocks() != 1 {
		t.Fatalf("blocks = %d, want 1", plan.NumBlocks())
	}
	if plan.NumSeparateCuts() != 1 {
		t.Fatalf("separate = %d, want 1 (the ccz)", plan.NumSeparateCuts())
	}
}

func TestStrategyStrings(t *testing.T) {
	if StrategyNone.String() != "standard" || StrategyCascade.String() != "cascade" ||
		StrategyWindow.String() != "window" || Strategy(9).String() != "unknown" {
		t.Fatal("strategy strings wrong")
	}
	if Lower.String() != "lower" || Upper.String() != "upper" {
		t.Fatal("side strings wrong")
	}
}
