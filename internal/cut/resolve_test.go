package cut

import (
	"testing"

	"hsfsim/internal/circuit"
	"hsfsim/internal/gate"
)

// TestResolveGroupsInterGroupConflict constructs two groups that are each
// individually contiguous-able but mutually exclusive: contracting both
// creates a cycle, so one must be dropped.
//
//	idx0: H(0)   (a1 ∈ A)
//	idx1: H(1)   (b2 ∈ B)
//	idx2: X(0)   (b1 ∈ B, pinned after a1)
//	idx3: X(1)   (a2 ∈ A, pinned after b2)
//
// A = {0,3}, B = {1,2}: A→B via H(0)→X(0) and B→A via H(1)→X(1).
func TestResolveGroupsInterGroupConflict(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.H(0), gate.H(1), gate.X(0), gate.X(1))
	dag := circuit.BuildDAG(c)

	a := []int{0, 3}
	b := []int{1, 2}
	// Both are individually valid.
	if _, ok := dag.ContractAndOrder([][]int{a}); !ok {
		t.Fatal("group A should be individually valid")
	}
	if _, ok := dag.ContractAndOrder([][]int{b}); !ok {
		t.Fatal("group B should be individually valid")
	}
	// Jointly they conflict.
	if _, ok := dag.ContractAndOrder([][]int{a, b}); ok {
		t.Fatal("groups A and B should conflict")
	}

	groups, order, err := resolveGroups(dag, [][]int{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 {
		t.Fatalf("surviving groups = %d, want 1", len(groups))
	}
	if len(order) != 4 {
		t.Fatalf("order covers %d gates", len(order))
	}
	// The order must respect the DAG and keep the surviving group
	// contiguous; verify by reordering and checking the unitary.
	r := c.Reorder(order)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestResolveGroupsSplitsInvalid covers the split path through the shared
// resolver (rather than via a strategy).
func TestResolveGroupsSplitsInvalid(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.RZZ(0.1, 0, 1), gate.H(1), gate.RZZ(0.2, 0, 1), gate.RZZ(0.3, 0, 1))
	dag := circuit.BuildDAG(c)
	// {0,2,3} is pinched by the H; the resolver must keep the valid tail
	// {2,3} as a group.
	groups, _, err := resolveGroups(dag, [][]int{{0, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 2 || groups[0][0] != 2 || groups[0][1] != 3 {
		t.Fatalf("groups = %v, want [[2 3]]", groups)
	}
}
