// Package peephole performs local circuit simplification: adjacent gate
// pairs on identical qubit sets are cancelled when their product is the
// identity, merged when they are same-family rotations, and fused through a
// ZYZ re-synthesis when both are single-qubit gates. The pass preserves the
// circuit unitary exactly (global phase included) and runs to a fixpoint.
package peephole

import (
	"math"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
	"hsfsim/internal/synth"
)

// identTol is the tolerance for identity detection.
const identTol = 1e-10

// Optimize simplifies the circuit until no rule fires. The result is a new
// circuit; the input is untouched.
func Optimize(c *circuit.Circuit) *circuit.Circuit {
	gates := make([]gate.Gate, len(c.Gates))
	copy(gates, c.Gates)
	for {
		next, changed := pass(gates)
		gates = next
		if !changed {
			break
		}
	}
	out := circuit.New(c.NumQubits)
	out.Gates = gates
	return out
}

// pass performs one left-to-right sweep.
func pass(gates []gate.Gate) ([]gate.Gate, bool) {
	var out []gate.Gate
	changed := false
	for i := 0; i < len(gates); i++ {
		g := gates[i]
		// Drop exact-identity gates outright.
		if isIdentity(g.Matrix) {
			changed = true
			continue
		}
		// Try to combine with the previous emitted gate if it is the most
		// recent gate on exactly the same qubit set and nothing in between
		// touches those qubits (guaranteed: we look only at the direct
		// predecessor in `out` whose qubits overlap g's).
		j := lastTouching(out, &g)
		if j >= 0 && sameQubits(&out[j], &g) && j == lastAnyTouching(out, &g) {
			if merged, ok := combine(&out[j], &g); ok {
				changed = true
				if merged == nil {
					out = append(out[:j], out[j+1:]...)
				} else {
					out[j] = *merged
				}
				continue
			}
		}
		out = append(out, g)
	}
	return out, changed
}

// lastTouching returns the index of the last gate in out sharing a qubit
// with g whose qubit set equals g's, or -1.
func lastTouching(out []gate.Gate, g *gate.Gate) int {
	for j := len(out) - 1; j >= 0; j-- {
		if out[j].SharesQubit(g) {
			if sameQubits(&out[j], g) {
				return j
			}
			return -1
		}
	}
	return -1
}

// lastAnyTouching returns the index of the last gate in out touching any of
// g's qubits (identical to lastTouching's scan but without the set check).
func lastAnyTouching(out []gate.Gate, g *gate.Gate) int {
	for j := len(out) - 1; j >= 0; j-- {
		if out[j].SharesQubit(g) {
			return j
		}
	}
	return -1
}

func sameQubits(a, b *gate.Gate) bool {
	if len(a.Qubits) != len(b.Qubits) {
		return false
	}
	for _, q := range a.Qubits {
		if !b.Touches(q) {
			return false
		}
	}
	return true
}

func isIdentity(m *cmat.Matrix) bool {
	return cmat.EqualTol(m, cmat.Identity(m.Rows), identTol)
}

// rotationFamily maps mergeable rotation gates to their constructor.
var rotationFamily = map[string]bool{
	"rx": true, "ry": true, "rz": true, "p": true,
	"rzz": true, "rxx": true, "ryy": true, "cp": true,
}

// combine merges b into a (a precedes b in circuit order). Returns
// (nil, true) when the pair cancels, (merged, true) when replaced by one
// gate, or (nil, false) when no rule applies.
func combine(a, b *gate.Gate) (*gate.Gate, bool) {
	// Matrix product b·a on the shared qubit set: align b's matrix to a's
	// qubit order.
	bAligned := alignMatrix(b, a.Qubits)
	prod := cmat.Mul(bAligned, a.Matrix)
	if isIdentity(prod) {
		return nil, true
	}
	// Same-family rotations: add angles.
	if a.Name == b.Name && rotationFamily[a.Name] && sameOrder(a, b) {
		theta := a.Params[0] + b.Params[0]
		merged := rebuildRotation(a.Name, theta, a.Qubits)
		if merged != nil {
			if isIdentity(merged.Matrix) {
				return nil, true
			}
			return merged, true
		}
	}
	// Two single-qubit gates: re-synthesize the product exactly via ZYZ.
	if len(a.Qubits) == 1 {
		z, err := synth.ZYZDecompose(prod)
		if err == nil {
			q := a.Qubits[0]
			g := gate.New("u3p", prod, []float64{z.Gamma, z.Beta, z.Delta}, q)
			return &g, true
		}
	}
	return nil, false
}

// sameOrder reports whether the qubit lists match element-wise (rotations
// like rzz are symmetric, but angle addition is only obviously valid when
// the matrices are expressed identically; symmetric gates pass either way
// because alignMatrix handles the general case elsewhere).
func sameOrder(a, b *gate.Gate) bool {
	for i := range a.Qubits {
		if a.Qubits[i] != b.Qubits[i] {
			// Symmetric two-qubit rotations commute with the swap of their
			// qubits; rzz/rxx/ryy/cp are symmetric, rx/ry/rz/p are 1q.
			switch a.Name {
			case "rzz", "rxx", "ryy", "cp":
				continue
			default:
				return false
			}
		}
	}
	return true
}

func rebuildRotation(name string, theta float64, qubits []int) *gate.Gate {
	// Angles are 4π-periodic for the two-level rotations and 2π for phases.
	switch name {
	case "rx":
		g := gate.RX(theta, qubits[0])
		return &g
	case "ry":
		g := gate.RY(theta, qubits[0])
		return &g
	case "rz":
		g := gate.RZ(theta, qubits[0])
		return &g
	case "p":
		g := gate.P(math.Mod(theta, 2*math.Pi), qubits[0])
		return &g
	case "rzz":
		g := gate.RZZ(theta, qubits[0], qubits[1])
		return &g
	case "rxx":
		g := gate.RXX(theta, qubits[0], qubits[1])
		return &g
	case "ryy":
		g := gate.RYY(theta, qubits[0], qubits[1])
		return &g
	case "cp":
		g := gate.CPhase(math.Mod(theta, 2*math.Pi), qubits[0], qubits[1])
		return &g
	}
	return nil
}

// alignMatrix re-expresses g's matrix with its qubits listed in the order
// given by target (a permutation of g.Qubits).
func alignMatrix(g *gate.Gate, target []int) *cmat.Matrix {
	same := true
	for i, q := range g.Qubits {
		if target[i] != q {
			same = false
			break
		}
	}
	if same {
		return g.Matrix
	}
	// permutation: bit i of the target order corresponds to bit srcBit[i]
	// of g's matrix index.
	srcBit := make([]int, len(target))
	for i, q := range target {
		for j, gq := range g.Qubits {
			if gq == q {
				srcBit[i] = j
			}
		}
	}
	dim := g.Matrix.Rows
	out := cmat.New(dim, dim)
	remap := func(x int) int {
		y := 0
		for i, sb := range srcBit {
			y |= ((x >> sb) & 1) << i
		}
		return y
	}
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			out.Set(remap(r), remap(c), g.Matrix.At(r, c))
		}
	}
	return out
}
