package peephole

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cmat"
	"hsfsim/internal/gate"
	"hsfsim/internal/synth"
)

func TestCancelsInversePairs(t *testing.T) {
	c := circuit.New(3)
	c.Append(
		gate.H(0), gate.H(0),
		gate.CNOT(0, 1), gate.CNOT(0, 1),
		gate.S(2), gate.Sdg(2),
		gate.SWAP(1, 2), gate.SWAP(1, 2),
		gate.T(0), gate.Tdg(0),
	)
	out := Optimize(c)
	if len(out.Gates) != 0 {
		t.Fatalf("gates left: %v", out.Gates)
	}
}

func TestMergesRotations(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.RZ(0.3, 0), gate.RZ(0.4, 0), gate.RZZ(0.2, 0, 1), gate.RZZ(0.5, 1, 0))
	out := Optimize(c)
	if len(out.Gates) != 2 {
		t.Fatalf("gates = %v", out.Gates)
	}
	if math.Abs(out.Gates[0].Params[0]-0.7) > 1e-12 {
		t.Fatalf("rz angle = %g", out.Gates[0].Params[0])
	}
	if math.Abs(out.Gates[1].Params[0]-0.7) > 1e-12 {
		t.Fatalf("rzz angle = %g", out.Gates[1].Params[0])
	}
	if !cmat.EqualTol(c.Unitary(), out.Unitary(), 1e-10) {
		t.Fatal("merge changed the unitary")
	}
}

func TestRotationsCancelToIdentity(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.RX(0.9, 0), gate.RX(-0.9, 0))
	out := Optimize(c)
	if len(out.Gates) != 0 {
		t.Fatalf("gates = %v", out.Gates)
	}
}

func TestFusesSingleQubitRuns(t *testing.T) {
	c := circuit.New(1)
	c.Append(gate.H(0), gate.T(0), gate.S(0), gate.H(0), gate.RZ(0.4, 0))
	out := Optimize(c)
	if len(out.Gates) != 1 {
		t.Fatalf("gates = %d, want 1 fused", len(out.Gates))
	}
	if !cmat.EqualTol(c.Unitary(), out.Unitary(), 1e-9) {
		t.Fatal("fusion changed the unitary")
	}
}

func TestInterveningGateBlocksMerge(t *testing.T) {
	// The H on qubit 0 sits between the two RZZ gates and does not commute:
	// no merge may happen.
	c := circuit.New(2)
	c.Append(gate.RZZ(0.3, 0, 1), gate.H(0), gate.RZZ(0.4, 0, 1))
	out := Optimize(c)
	if len(out.Gates) != 3 {
		t.Fatalf("gates = %d, want 3", len(out.Gates))
	}
}

func TestDisjointGateDoesNotBlock(t *testing.T) {
	// A gate on an unrelated qubit between two H(0) must not stop the
	// cancellation.
	c := circuit.New(3)
	c.Append(gate.H(0), gate.X(2), gate.H(0))
	out := Optimize(c)
	if len(out.Gates) != 1 || out.Gates[0].Name != "x" {
		t.Fatalf("gates = %v", out.Gates)
	}
}

func TestOptimizePreservesUnitaryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		c := circuit.New(n)
		for i := 0; i < 16; i++ {
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(7) {
			case 0:
				c.Append(gate.H(a))
			case 1:
				c.Append(gate.T(a))
			case 2:
				c.Append(gate.RZ(rng.Float64()*3, a))
			case 3:
				c.Append(gate.CNOT(a, b))
			case 4:
				c.Append(gate.RZZ(rng.Float64(), a, b))
			case 5:
				c.Append(gate.S(a))
			default:
				c.Append(gate.SWAP(a, b))
			}
		}
		out := Optimize(c)
		if len(out.Gates) > len(c.Gates) {
			return false
		}
		return cmat.EqualTol(c.Unitary(), out.Unitary(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeAfterTranspileShrinks(t *testing.T) {
	// Transpiled circuits contain mergeable rotation runs; the peephole
	// pass must shrink them without changing the unitary.
	src := circuit.New(3)
	src.Append(
		gate.ISWAP(0, 1), gate.FSim(0.4, 0.7, 1, 2), gate.SWAP(0, 2),
		gate.RZZ(0.5, 0, 1), gate.CCZ(0, 1, 2),
	)
	tr, err := synth.Transpile(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Optimize(tr)
	if len(out.Gates) >= len(tr.Gates) {
		t.Fatalf("no shrink: %d -> %d", len(tr.Gates), len(out.Gates))
	}
	if !cmat.EqualTol(src.Unitary(), out.Unitary(), 1e-8) {
		t.Fatal("optimize-after-transpile changed the unitary")
	}
}

func TestIdentityGatesDropped(t *testing.T) {
	c := circuit.New(2)
	c.Append(gate.I(0), gate.RZ(0, 1), gate.H(0))
	out := Optimize(c)
	if len(out.Gates) != 1 || out.Gates[0].Name != "h" {
		t.Fatalf("gates = %v", out.Gates)
	}
}
