package hsfsim

import "hsfsim/internal/gate"

// Re-exported gate constructors. Bit convention: in a multi-qubit gate the
// first listed qubit supplies the least significant matrix index bit.

// I returns the identity gate on q.
func I(q int) Gate { return gate.I(q) }

// X returns the Pauli-X gate.
func X(q int) Gate { return gate.X(q) }

// Y returns the Pauli-Y gate.
func Y(q int) Gate { return gate.Y(q) }

// Z returns the Pauli-Z gate.
func Z(q int) Gate { return gate.Z(q) }

// H returns the Hadamard gate.
func H(q int) Gate { return gate.H(q) }

// S returns the phase gate diag(1, i).
func S(q int) Gate { return gate.S(q) }

// Sdg returns S†.
func Sdg(q int) Gate { return gate.Sdg(q) }

// T returns the T gate.
func T(q int) Gate { return gate.T(q) }

// Tdg returns T†.
func Tdg(q int) Gate { return gate.Tdg(q) }

// SX returns √X.
func SX(q int) Gate { return gate.SX(q) }

// SY returns √Y.
func SY(q int) Gate { return gate.SY(q) }

// SW returns √W with W = (X+Y)/√2.
func SW(q int) Gate { return gate.SW(q) }

// RX returns exp(-iθX/2).
func RX(theta float64, q int) Gate { return gate.RX(theta, q) }

// RY returns exp(-iθY/2).
func RY(theta float64, q int) Gate { return gate.RY(theta, q) }

// RZ returns exp(-iθZ/2).
func RZ(theta float64, q int) Gate { return gate.RZ(theta, q) }

// P returns the phase gate diag(1, e^{iφ}).
func P(phi float64, q int) Gate { return gate.P(phi, q) }

// U3 returns the generic single-qubit rotation.
func U3(theta, phi, lambda float64, q int) Gate { return gate.U3(theta, phi, lambda, q) }

// CNOT returns the controlled-X gate.
func CNOT(control, target int) Gate { return gate.CNOT(control, target) }

// CZ returns the controlled-Z gate.
func CZ(a, b int) Gate { return gate.CZ(a, b) }

// CPhase returns the controlled-phase gate.
func CPhase(phi float64, a, b int) Gate { return gate.CPhase(phi, a, b) }

// SWAP returns the swap gate (Schmidt rank 4).
func SWAP(a, b int) Gate { return gate.SWAP(a, b) }

// ISWAP returns the iSWAP gate (Schmidt rank 4).
func ISWAP(a, b int) Gate { return gate.ISWAP(a, b) }

// RZZ returns exp(-iθ Z⊗Z/2), the QAOA problem-layer entangler.
func RZZ(theta float64, a, b int) Gate { return gate.RZZ(theta, a, b) }

// RXX returns exp(-iθ X⊗X/2).
func RXX(theta float64, a, b int) Gate { return gate.RXX(theta, a, b) }

// RYY returns exp(-iθ Y⊗Y/2).
func RYY(theta float64, a, b int) Gate { return gate.RYY(theta, a, b) }

// FSim returns the fermionic simulation gate.
func FSim(theta, phi float64, a, b int) Gate { return gate.FSim(theta, phi, a, b) }

// CRX returns the controlled-RX gate.
func CRX(theta float64, control, target int) Gate { return gate.CRX(theta, control, target) }

// CRY returns the controlled-RY gate.
func CRY(theta float64, control, target int) Gate { return gate.CRY(theta, control, target) }

// CRZ returns the controlled-RZ gate.
func CRZ(theta float64, control, target int) Gate { return gate.CRZ(theta, control, target) }

// CCX returns the Toffoli gate.
func CCX(c1, c2, target int) Gate { return gate.CCX(c1, c2, target) }

// CCZ returns the doubly-controlled Z gate.
func CCZ(a, b, c int) Gate { return gate.CCZ(a, b, c) }
