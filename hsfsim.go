// Package hsfsim is a quantum circuit simulator implementing Hybrid
// Schrödinger-Feynman (HSF) simulation with joint gate cutting, reproducing
//
//	Herzog, Burgholzer, Ufrecht, Scherer, Wille:
//	"Joint Cutting for Hybrid Schrödinger-Feynman Simulation of Quantum
//	Circuits", DAC 2025.
//
// Three simulation methods are provided behind one call:
//
//   - Schrodinger: full 2^n statevector simulation (the baseline);
//   - StandardHSF: the circuit is bipartitioned, every gate crossing the cut
//     is Schmidt-decomposed separately, and the exponentially many resulting
//     "paths" are simulated on the two halves (state of the art before the
//     paper);
//   - JointHSF: crossing gates are first grouped into blocks (cascades of
//     RZZ/CZ/CNOT gates, or window blocks) and each block is cut jointly
//     with a single Schmidt decomposition, collapsing the path count from
//     ∏ r_i to the block ranks (the paper's contribution).
//
// A minimal session:
//
//	c := hsfsim.NewCircuit(4)
//	c.Append(hsfsim.H(0), hsfsim.RZZ(0.8, 1, 2), hsfsim.RZZ(0.3, 1, 3))
//	res, err := hsfsim.Simulate(c, hsfsim.Options{
//		Method: hsfsim.JointHSF,
//		CutPos: 1,
//	})
//	// res.Amplitudes holds the statevector, res.NumPaths the path count.
package hsfsim

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/fuse"
	"hsfsim/internal/gate"
	"hsfsim/internal/hsf"
	"hsfsim/internal/statevec"
	"hsfsim/internal/telemetry"
)

// Method selects the simulation algorithm.
type Method int

// Simulation methods.
const (
	// Schrodinger performs full statevector simulation.
	Schrodinger Method = iota
	// StandardHSF cuts every crossing gate separately (state of the art).
	StandardHSF
	// JointHSF groups crossing gates into blocks and cuts them jointly
	// (the paper's proposed method).
	JointHSF
)

func (m Method) String() string {
	switch m {
	case Schrodinger:
		return "schrodinger"
	case StandardHSF:
		return "standard-hsf"
	case JointHSF:
		return "joint-hsf"
	default:
		return "unknown"
	}
}

// BlockStrategy mirrors the joint-cut grouping strategies of the planner.
type BlockStrategy = cut.Strategy

// Block strategies for JointHSF (ignored by the other methods).
const (
	// BlockCascade groups crossing two-qubit gates sharing an anchor qubit
	// (the paper's QAOA evaluation setting; default for JointHSF).
	BlockCascade = cut.StrategyCascade
	// BlockWindow grows fusion-style windows around crossing gates,
	// absorbing local gates (supremacy-style circuits, Fig. 3).
	BlockWindow = cut.StrategyWindow
)

// ErrTimeout is returned when a simulation exceeds Options.Timeout. It is
// distinct from the caller's context being canceled (context.Canceled) or
// hitting its own deadline (context.DeadlineExceeded); match all three with
// errors.Is.
var ErrTimeout = hsf.ErrTimeout

// ErrBudget is the sentinel matched by errors.Is when admission control
// rejects a job whose estimated cost exceeds Options.MemoryBudget or
// Options.MaxPaths. The concrete error is a *hsf.BudgetError carrying the
// cost estimate; the rejection happens before any statevector is allocated.
var ErrBudget = hsf.ErrBudget

// ErrCheckpointMismatch is returned when Options.ResumeFrom holds a
// checkpoint produced by a different circuit, cut plan, or MaxAmplitudes.
var ErrCheckpointMismatch = hsf.ErrCheckpointMismatch

// Checkpoint is a resumable snapshot of a partially executed HSF run: the
// completed prefix tasks plus their merged partial accumulator. See
// Options.CheckpointWriter / Options.ResumeFrom for the serialized form and
// Options.OnCheckpoint for live mid-run snapshots.
type Checkpoint = hsf.Checkpoint

// BudgetError is the concrete admission-control rejection; it wraps
// ErrBudget and carries the cost estimate that triggered it.
type BudgetError = hsf.BudgetError

// PanicError wraps a panic recovered from an HSF path worker: the simulation
// reports it as an ordinary error instead of crashing the process.
type PanicError = hsf.PanicError

// ErrUnsupported is returned (match with errors.Is) when an option
// combination is not supported by the selected HSF backend — e.g. Workers > 1
// on the decision-diagram backend — instead of being silently ignored.
var ErrUnsupported = hsf.ErrUnsupported

// ErrInjectedFault is returned when Options.FailAfterPaths triggers; it
// makes checkpoint/resume recovery testable deterministically.
var ErrInjectedFault = hsf.ErrInjectedFault

// Backend selects the HSF path-engine state representation; see the
// Options.Backend field. Schrödinger runs ignore it.
type Backend = hsf.Backend

const (
	// BackendDense evolves partition states as dense statevector arrays (the
	// default).
	BackendDense = hsf.BackendDense
	// BackendDD evolves partition states as decision diagrams (the authors'
	// ref-[10] approach): memory-compressing and single-worker, with results
	// structurally identical to the dense backend.
	BackendDD = hsf.BackendDD
)

// ParseBackend maps a CLI/wire backend name to a Backend: "dense" (aliases:
// "", "array") or "dd". Unknown names wrap ErrUnsupported.
func ParseBackend(s string) (Backend, error) { return hsf.ParseBackend(s) }

// CostEstimate is the up-front resource projection used by admission
// control; see EstimateCost.
type CostEstimate = hsf.CostEstimate

// DefaultMemoryBudget is the admission ceiling applied when
// Options.MemoryBudget is zero: 16 GiB, the footprint of a 30-qubit dense
// statevector.
const DefaultMemoryBudget = hsf.DefaultMemoryBudget

// Options configures Simulate.
type Options struct {
	// Method selects the algorithm; the zero value is Schrodinger.
	Method Method
	// CutPos places the bipartition for the HSF methods: qubits 0..CutPos
	// form the lower half. Required (≥ 0) for StandardHSF/JointHSF; ignored
	// by Schrodinger.
	CutPos int
	// MaxAmplitudes limits the output to the first M amplitudes (paper
	// Table I computes 10^6). 0 means the full statevector.
	MaxAmplitudes int
	// Workers bounds path/apply parallelism; 0 uses all CPUs.
	Workers int
	// BlockStrategy selects the JointHSF grouping; the zero value picks
	// BlockCascade.
	BlockStrategy BlockStrategy
	// MaxBlockQubits caps joint-cut block sizes (0: library default).
	MaxBlockQubits int
	// FusionMaxQubits configures gate fusion (0: default, <0: disabled).
	FusionMaxQubits int
	// UseAnalyticCascades replaces numeric SVDs by analytic cascade
	// decompositions where the pattern matches (ablation; the paper's
	// evaluation runs numerically).
	UseAnalyticCascades bool
	// Tol is the Schmidt singular-value truncation tolerance (0: default).
	Tol float64
	// Timeout aborts HSF runs after this duration (0: none), as in the
	// paper's 1 h limit for standard HSF.
	Timeout time.Duration
	// Backend selects the HSF path-engine state representation: BackendDense
	// (the zero value) or BackendDD. Both run through the same path-tree
	// walker, so checkpoint/resume, timeouts, and fault injection behave
	// identically; the DD backend runs a single path worker and rejects
	// Workers > 1 with ErrUnsupported.
	Backend Backend
	// UseDDEngine is the deprecated boolean form of Backend: when set it
	// forces BackendDD. New code should set Backend instead.
	UseDDEngine bool
	// MemoryBudget caps the estimated memory footprint in bytes before any
	// statevector is allocated: 0 selects DefaultMemoryBudget (16 GiB),
	// negative disables the check. Over-budget jobs fail with ErrBudget.
	MemoryBudget int64
	// MaxPaths rejects HSF plans whose Feynman path count exceeds it
	// (0: no limit). Over-budget jobs fail with ErrBudget.
	MaxPaths uint64
	// CheckpointWriter, when non-nil, receives a binary checkpoint snapshot
	// if an HSF run (either backend) stops prematurely (cancellation,
	// timeout, injected fault, worker panic): the completed prefix tasks
	// plus their merged partial accumulator. Ignored by Schrodinger.
	CheckpointWriter io.Writer
	// ResumeFrom, when non-nil, seeds an HSF run from a checkpoint
	// previously written through CheckpointWriter: completed prefix tasks
	// are skipped and the accumulator continues from the snapshot. The
	// checkpoint must match the circuit, cut plan, and MaxAmplitudes
	// (ErrCheckpointMismatch otherwise); the backend may differ, since both
	// walk the same prefix-task space.
	ResumeFrom io.Reader
	// FailAfterPaths injects a deterministic fault after roughly that many
	// HSF path leaves (0: disabled) — a testing hook that makes
	// checkpoint/resume recovery reproducible without real crashes.
	FailAfterPaths int64
	// OnCheckpoint, when non-nil, runs after every completed HSF prefix task
	// is merged, with the engine's live checkpoint snapshot. It is invoked
	// under the engine's merge lock, so it must be fast: rate-limit, Clone,
	// and hand the copy to another goroutine instead of writing to disk
	// inline. Job services use it to flush durable mid-run checkpoints so a
	// killed process resumes instead of restarting. Ignored by Schrodinger.
	OnCheckpoint func(*Checkpoint)
	// Telemetry, when non-nil, records run-level measurements — plan and
	// compile spans, per-segment sweep timings, kernel-class attribution,
	// leaf-latency histograms, pool and parallelism statistics — and
	// Result.Report is populated from it. Create one with
	// NewTelemetryRecorder. Telemetry is sampled and aggregated per worker,
	// so enabling it does not perturb the zero-alloc simulation hot path.
	Telemetry *TelemetryRecorder
	// Progress, when non-nil, is wired to the run's live path counter so a
	// caller can render a paths-done/total ticker (see ProgressTracker.Go).
	Progress *ProgressTracker
}

// TelemetryRecorder collects run-level measurements; see Options.Telemetry.
// The same recorder may be shared across runs to aggregate them.
type TelemetryRecorder = telemetry.Recorder

// TelemetryReport is the JSON-serializable summary a recorder assembles;
// see Result.Report.
type TelemetryReport = telemetry.Report

// ProgressTracker publishes live paths-done/total progress; see
// Options.Progress.
type ProgressTracker = telemetry.Tracker

// NewTelemetryRecorder returns a fresh recorder for Options.Telemetry.
func NewTelemetryRecorder() *TelemetryRecorder { return telemetry.New() }

// Result reports the simulated amplitudes and run statistics.
type Result struct {
	// Amplitudes holds the first MaxAmplitudes entries of the statevector.
	Amplitudes []complex128
	// Method echoes the algorithm used.
	Method Method
	// NumPaths is the number of Feynman paths (1 for Schrodinger);
	// saturates at MaxUint64.
	NumPaths uint64
	// Log2Paths is log2(NumPaths) without saturation.
	Log2Paths float64
	// PathsSimulated counts the path leaves actually executed (1 for
	// Schrodinger; for a resumed HSF run it includes leaves inherited from
	// the checkpoint).
	PathsSimulated int64
	// NumCuts, NumBlocks, NumSeparateCuts describe the plan (HSF only).
	NumCuts         int
	NumBlocks       int
	NumSeparateCuts int
	// PreprocessTime covers planning, Schmidt decompositions, and gate
	// fusion; SimTime covers the simulation itself — matching the two-line
	// rows of the paper's Table I.
	PreprocessTime time.Duration
	SimTime        time.Duration
	// Report is the telemetry summary of the run; populated only when
	// Options.Telemetry was set.
	Report *TelemetryReport
}

// TotalTime returns preprocessing plus simulation time.
func (r *Result) TotalTime() time.Duration { return r.PreprocessTime + r.SimTime }

// Simulate runs the circuit with the selected method.
func Simulate(c *Circuit, opts Options) (*Result, error) {
	return SimulateContext(context.Background(), c, opts)
}

// SimulateContext runs the circuit under ctx. Cancellation is cooperative:
// the Schrödinger loop observes it between compiled sweep steps and the HSF
// engines between path-tree segments, so a canceled run stops within one
// bounded unit of work per worker. The error distinguishes the caller going away (context.Canceled /
// context.DeadlineExceeded) from the job exceeding its own Options.Timeout
// (ErrTimeout).
func SimulateContext(ctx context.Context, c *Circuit, opts Options) (*Result, error) {
	cp, err := Compile(c, opts)
	if err != nil {
		return nil, err
	}
	return SimulateCompiledContext(ctx, cp, opts)
}

// CompiledPlan is the reusable, immutable result of Compile: the circuit's
// cut plan (HSF methods) or fused, kernel-compiled gate segment
// (Schrodinger), plus the fingerprint that keys it. A CompiledPlan is safe
// for concurrent SimulateCompiledContext calls, so a service can compile a
// hot circuit once and execute many requests — even simultaneously — against
// the same plan, skipping the Schmidt decompositions that dominate
// preprocessing.
type CompiledPlan struct {
	circuit *Circuit
	method  Method
	plan    *cut.Plan                 // HSF methods
	seg     *statevec.CompiledSegment // Schrodinger
	gates   []gate.Gate               // Schrodinger, post-fusion (telemetry census)
	fp      uint64
	compile time.Duration
}

// Fingerprint returns the plan's cache key: a hash of the circuit (gate
// sequence, operands, parameters, matrices) and every plan-affecting option.
// Equal fingerprints execute identically; see Fingerprint for computing the
// key without compiling.
func (p *CompiledPlan) Fingerprint() uint64 { return p.fp }

// Method echoes the method the plan was compiled for.
func (p *CompiledPlan) Method() Method { return p.method }

// NumQubits returns the register size.
func (p *CompiledPlan) NumQubits() int { return p.circuit.NumQubits }

// NumPaths returns the plan's Feynman path count (1 for Schrodinger),
// saturating at MaxUint64.
func (p *CompiledPlan) NumPaths() uint64 {
	if p.plan == nil {
		return 1
	}
	n, _ := p.plan.NumPaths()
	return n
}

// CompileTime reports the wall-clock cost of building this plan (the
// preprocessing line of the paper's Table I); cached executions inherit it
// in Result.PreprocessTime without paying it again.
func (p *CompiledPlan) CompileTime() time.Duration { return p.compile }

// EstimateCost projects the resources one SimulateCompiledContext call with
// opts would need, without allocating. Services use it for admission
// control against a cached plan without rebuilding it.
func (p *CompiledPlan) EstimateCost(opts Options) *CostEstimate {
	if p.plan == nil {
		est := schrodingerCost(p.circuit.NumQubits)
		return &est
	}
	workers := opts.Workers
	if !opts.engineBackend().ParallelWorkers() {
		workers = 1
	}
	est := hsf.Cost(p.plan, hsf.Options{MaxAmplitudes: opts.MaxAmplitudes, Workers: workers})
	return &est
}

// fingerprintOf computes the plan cache key for (c, opts): the circuit hash
// extended with every plan-affecting option, normalized the same way the
// compilers normalize them. Execution-time options (workers, budgets,
// MaxAmplitudes, backend, checkpointing, telemetry) are deliberately
// excluded — runs that differ only there share a plan.
func fingerprintOf(c *Circuit, opts Options) uint64 {
	cfp := hsf.CircuitFingerprint(c)
	switch opts.Method {
	case Schrodinger:
		return hsf.FingerprintOptions(cfp,
			uint64(Schrodinger), uint64(int64(opts.FusionMaxQubits)))
	default:
		strategy := cut.StrategyNone
		if opts.Method == JointHSF {
			strategy = opts.BlockStrategy
			if strategy == cut.StrategyNone {
				strategy = cut.StrategyCascade
			}
		}
		analytic := uint64(0)
		if opts.UseAnalyticCascades {
			analytic = 1
		}
		return hsf.FingerprintOptions(cfp,
			uint64(opts.Method), uint64(int64(opts.CutPos)), uint64(strategy),
			uint64(int64(opts.MaxBlockQubits)), math.Float64bits(opts.Tol), analytic)
	}
}

// Fingerprint returns the plan cache key for (c, opts) without compiling
// anything: two submissions with equal fingerprints compile to the same plan
// and produce the same amplitudes, so a job service can batch them behind
// one walk. The converse does not hold — equivalent circuits written
// differently may hash apart, which only costs a cache miss.
func Fingerprint(c *Circuit, opts Options) (uint64, error) {
	if c == nil {
		return 0, errors.New("hsfsim: nil circuit")
	}
	switch opts.Method {
	case Schrodinger, StandardHSF, JointHSF:
		return fingerprintOf(c, opts), nil
	default:
		return 0, fmt.Errorf("hsfsim: unknown method %d", opts.Method)
	}
}

// Compile validates the circuit and builds the method's execution plan once:
// the cut plan with its Schmidt decompositions for the HSF methods, or the
// fused and kernel-compiled gate segment for Schrodinger. The plan-affecting
// options (Method, CutPos, BlockStrategy, MaxBlockQubits, Tol,
// UseAnalyticCascades; FusionMaxQubits for Schrodinger) are baked in;
// execution options are chosen per SimulateCompiledContext call.
func Compile(c *Circuit, opts Options) (*CompiledPlan, error) {
	if c == nil {
		return nil, errors.New("hsfsim: nil circuit")
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("hsfsim: %w", err)
	}
	cp := &CompiledPlan{circuit: c, method: opts.Method, fp: fingerprintOf(c, opts)}
	start := time.Now()
	switch opts.Method {
	case Schrodinger:
		endCompile := opts.Telemetry.Span("compile")
		gates := c.Gates
		if opts.FusionMaxQubits >= 0 {
			maxQ := opts.FusionMaxQubits
			if maxQ == 0 {
				maxQ = fuse.DefaultMaxQubits
			}
			gates = fuse.Fuse(gates, maxQ)
		} else {
			// Compilation attaches kernel plans to the gate structs; copy so
			// the caller's circuit is left untouched.
			gates = append([]gate.Gate(nil), gates...)
		}
		// Compile once: every fused k-qubit gate gets its kernel plan here
		// instead of rebuilding (and allocating) it on each application, and
		// runs of low-qubit gates become cache-blocked sweeps over the state.
		cp.gates = gates
		cp.seg = statevec.CompileSegment(gates, c.NumQubits)
		endCompile()
	case StandardHSF, JointHSF:
		strategy := cut.StrategyNone
		if opts.Method == JointHSF {
			strategy = opts.BlockStrategy
			if strategy == cut.StrategyNone {
				strategy = cut.StrategyCascade
			}
		}
		// The "plan" span covers partitioning, block grouping, and every
		// Schmidt decomposition — the preprocessing line of Table I.
		endPlan := opts.Telemetry.Span("plan")
		plan, err := cut.BuildPlan(c, cut.Options{
			Partition:      cut.Partition{CutPos: opts.CutPos},
			Strategy:       strategy,
			MaxBlockQubits: opts.MaxBlockQubits,
			Tol:            opts.Tol,
			UseAnalytic:    opts.UseAnalyticCascades,
		})
		endPlan()
		if err != nil {
			return nil, fmt.Errorf("hsfsim: %w", err)
		}
		cp.plan = plan
	default:
		return nil, fmt.Errorf("hsfsim: unknown method %d", opts.Method)
	}
	cp.compile = time.Since(start)
	return cp, nil
}

// SimulateCompiled executes a compiled plan without external cancellation.
func SimulateCompiled(cp *CompiledPlan, opts Options) (*Result, error) {
	return SimulateCompiledContext(context.Background(), cp, opts)
}

// SimulateCompiledContext executes a compiled plan under ctx with the given
// execution options (workers, budgets, MaxAmplitudes, backend, timeout,
// checkpointing, telemetry); the plan-affecting options were fixed at
// Compile time and are ignored here. The plan is not mutated, so concurrent
// executions of the same CompiledPlan are safe — that is what lets a job
// service batch many requests behind one compile.
func SimulateCompiledContext(ctx context.Context, cp *CompiledPlan, opts Options) (*Result, error) {
	if cp == nil {
		return nil, errors.New("hsfsim: nil compiled plan")
	}
	if cp.method == Schrodinger {
		return cp.runSchrodinger(ctx, opts)
	}
	return cp.runHSF(ctx, opts)
}

// schrodingerCost estimates the dense statevector footprint of a full 2^n
// simulation: the state itself plus a same-sized scratch bound for fused
// gate application.
func schrodingerCost(numQubits int) CostEstimate {
	bytes := int64(math.MaxInt64)
	if numQubits < 60 {
		bytes = int64(16) << uint(numQubits)
	}
	return CostEstimate{
		Paths:            1,
		PathsExact:       true,
		Workers:          1,
		StatePairBytes:   bytes,
		PerWorkerBytes:   bytes,
		AccumulatorBytes: bytes,
		TotalBytes:       bytes,
	}
}

func (cp *CompiledPlan) runSchrodinger(ctx context.Context, opts Options) (*Result, error) {
	c, seg := cp.circuit, cp.seg
	est := schrodingerCost(c.NumQubits)
	budget := opts.MemoryBudget
	if budget == 0 {
		budget = DefaultMemoryBudget
	}
	if budget > 0 && est.TotalBytes > budget {
		return nil, &BudgetError{
			Estimate:     est,
			MemoryBudget: budget,
			Reason:       fmt.Sprintf("2^%d-amplitude statevector exceeds the memory budget of %d bytes", c.NumQubits, budget),
		}
	}
	if opts.Telemetry != nil {
		opts.Telemetry.AddKernelClasses(kernelClassCensus(cp.gates))
	}

	if opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, opts.Timeout, ErrTimeout)
		defer cancel()
	}
	opts.Progress.Start(1, 0, nil)
	simStart := time.Now()
	// The sweep runs on the SoA planes; amplitudes are interleaved exactly
	// once, at the Result edge below.
	s := statevec.NewVector(c.NumQubits)
	for i := 0; i < seg.NumSteps(); i++ {
		select {
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		default:
		}
		if opts.Telemetry != nil {
			// The Schrödinger loop runs tens of steps per run, so every
			// step is timed (no sampling needed at this rate).
			t0 := time.Now()
			seg.ApplyStep(s, i)
			opts.Telemetry.ObserveSegment(i, time.Since(t0))
		} else {
			seg.ApplyStep(s, i)
		}
	}
	simTime := time.Since(simStart)
	opts.Progress.Add(1)
	opts.Telemetry.FinishRun(telemetry.RunTotals{
		TotalPaths: 1, Simulated: 1, Workers: 1,
		Gomaxprocs: runtime.GOMAXPROCS(0), Elapsed: simTime,
	})
	amps := []complex128(s.ToComplex())
	if opts.MaxAmplitudes > 0 && opts.MaxAmplitudes < len(amps) {
		amps = amps[:opts.MaxAmplitudes]
	}
	return &Result{
		Amplitudes:     amps,
		Method:         Schrodinger,
		NumPaths:       1,
		PathsSimulated: 1,
		PreprocessTime: cp.compile,
		SimTime:        simTime,
		Report:         reportWithISA(opts.Telemetry.Report()),
	}, nil
}

// reportWithISA stamps the active kernel arm onto a run report so artifacts
// record which vector bodies produced them. Nil-safe: telemetry may be off.
func reportWithISA(rep *telemetry.Report) *telemetry.Report {
	if rep != nil {
		rep.KernelISA = statevec.KernelISA()
	}
	return rep
}

// kernelClassCensus tallies the kernel classes of a gate list for direct
// telemetry attribution (the Schrödinger path applies each gate once).
func kernelClassCensus(gates []gate.Gate) (names []string, counts []int64) {
	numKinds := int(gate.KindControlled) + 1
	names = make([]string, numKinds)
	counts = make([]int64, numKinds)
	for k := range names {
		names[k] = gate.Kind(k).String()
	}
	for i := range gates {
		counts[gates[i].Class()]++
	}
	return names, counts
}

func (cp *CompiledPlan) runHSF(ctx context.Context, opts Options) (*Result, error) {
	plan := cp.plan
	engineOpts := hsf.Options{
		MaxAmplitudes:    opts.MaxAmplitudes,
		Backend:          opts.engineBackend(),
		Workers:          opts.Workers,
		FusionMaxQubits:  opts.FusionMaxQubits,
		Timeout:          opts.Timeout,
		MemoryBudget:     opts.MemoryBudget,
		MaxPaths:         opts.MaxPaths,
		CheckpointWriter: opts.CheckpointWriter,
		FailAfterPaths:   opts.FailAfterPaths,
		OnCheckpoint:     opts.OnCheckpoint,
		Telemetry:        opts.Telemetry,
		Progress:         opts.Progress,
	}
	if opts.ResumeFrom != nil {
		ck, err := hsf.ReadCheckpoint(opts.ResumeFrom)
		if err != nil {
			return nil, err
		}
		engineOpts.Resume = ck
	}
	res, err := hsf.RunContext(ctx, plan, engineOpts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Amplitudes:      res.Amplitudes,
		Method:          cp.method,
		NumPaths:        res.NumPaths,
		Log2Paths:       res.Log2Paths,
		PathsSimulated:  res.PathsSimulated,
		NumCuts:         len(plan.Cuts),
		NumBlocks:       plan.NumBlocks(),
		NumSeparateCuts: plan.NumSeparateCuts(),
		PreprocessTime:  cp.compile,
		SimTime:         res.Elapsed,
		Report:          reportWithISA(opts.Telemetry.Report()),
	}, nil
}

// PlanSummary re-exports the serializable cut-plan description.
type PlanSummary = cut.Summary

// Analyze builds the joint-cut plan for the circuit without simulating and
// returns its summary: path counts, blocks, per-cut ranks. Use it to decide
// whether an instance is HSF-friendly before committing to a run.
func Analyze(c *Circuit, cutPos int, strategy BlockStrategy, maxBlockQubits int) (*PlanSummary, error) {
	if strategy == cut.StrategyNone {
		strategy = cut.StrategyCascade
	}
	plan, err := cut.BuildPlan(c, cut.Options{
		Partition:      cut.Partition{CutPos: cutPos},
		Strategy:       strategy,
		MaxBlockQubits: maxBlockQubits,
	})
	if err != nil {
		return nil, fmt.Errorf("hsfsim: %w", err)
	}
	s := plan.Summarize()
	return &s, nil
}

// PathCounts reports, without simulating, the path counts of standard and
// joint cutting for the circuit and cut position — the quantity plotted in
// the paper's Fig. 3b.
func PathCounts(c *Circuit, cutPos int, strategy BlockStrategy, maxBlockQubits int) (standard, joint uint64, err error) {
	p := cut.Partition{CutPos: cutPos}
	std, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyNone})
	if err != nil {
		return 0, 0, err
	}
	if strategy == cut.StrategyNone {
		strategy = cut.StrategyCascade
	}
	jnt, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: strategy, MaxBlockQubits: maxBlockQubits})
	if err != nil {
		return 0, 0, err
	}
	standard, _ = std.NumPaths()
	joint, _ = jnt.NumPaths()
	return standard, joint, nil
}

// EstimateCost projects, without allocating or simulating, the resources a
// Simulate call would need: Feynman path count and an upper bound on the
// memory footprint (partition statevectors × workers, clone chain, and
// accumulators). It is the estimator behind the Options.MemoryBudget /
// Options.MaxPaths admission gate; services can call it to reject or price
// jobs before committing to a run.
func EstimateCost(c *Circuit, opts Options) (*CostEstimate, error) {
	if c == nil {
		return nil, errors.New("hsfsim: nil circuit")
	}
	if opts.Method == Schrodinger {
		est := schrodingerCost(c.NumQubits)
		return &est, nil
	}
	strategy := cut.StrategyNone
	if opts.Method == JointHSF {
		strategy = opts.BlockStrategy
		if strategy == cut.StrategyNone {
			strategy = cut.StrategyCascade
		}
	}
	plan, err := cut.BuildPlan(c, cut.Options{
		Partition:      cut.Partition{CutPos: opts.CutPos},
		Strategy:       strategy,
		MaxBlockQubits: opts.MaxBlockQubits,
		Tol:            opts.Tol,
		UseAnalytic:    opts.UseAnalyticCascades,
	})
	if err != nil {
		return nil, fmt.Errorf("hsfsim: %w", err)
	}
	workers := opts.Workers
	if !opts.engineBackend().ParallelWorkers() {
		workers = 1
	}
	est := hsf.Cost(plan, hsf.Options{MaxAmplitudes: opts.MaxAmplitudes, Workers: workers})
	return &est, nil
}

// engineBackend resolves the effective HSF backend: the deprecated
// UseDDEngine flag forces BackendDD over the Backend field's zero value.
func (o Options) engineBackend() Backend {
	if o.UseDDEngine {
		return BackendDD
	}
	return o.Backend
}

// Circuit re-exports the circuit IR so users never import internal packages.
type Circuit = circuit.Circuit

// Gate re-exports the gate type.
type Gate = gate.Gate

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }
