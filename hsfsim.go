// Package hsfsim is a quantum circuit simulator implementing Hybrid
// Schrödinger-Feynman (HSF) simulation with joint gate cutting, reproducing
//
//	Herzog, Burgholzer, Ufrecht, Scherer, Wille:
//	"Joint Cutting for Hybrid Schrödinger-Feynman Simulation of Quantum
//	Circuits", DAC 2025.
//
// Three simulation methods are provided behind one call:
//
//   - Schrodinger: full 2^n statevector simulation (the baseline);
//   - StandardHSF: the circuit is bipartitioned, every gate crossing the cut
//     is Schmidt-decomposed separately, and the exponentially many resulting
//     "paths" are simulated on the two halves (state of the art before the
//     paper);
//   - JointHSF: crossing gates are first grouped into blocks (cascades of
//     RZZ/CZ/CNOT gates, or window blocks) and each block is cut jointly
//     with a single Schmidt decomposition, collapsing the path count from
//     ∏ r_i to the block ranks (the paper's contribution).
//
// A minimal session:
//
//	c := hsfsim.NewCircuit(4)
//	c.Append(hsfsim.H(0), hsfsim.RZZ(0.8, 1, 2), hsfsim.RZZ(0.3, 1, 3))
//	res, err := hsfsim.Simulate(c, hsfsim.Options{
//		Method: hsfsim.JointHSF,
//		CutPos: 1,
//	})
//	// res.Amplitudes holds the statevector, res.NumPaths the path count.
package hsfsim

import (
	"errors"
	"fmt"
	"time"

	"hsfsim/internal/circuit"
	"hsfsim/internal/cut"
	"hsfsim/internal/fuse"
	"hsfsim/internal/gate"
	"hsfsim/internal/hsf"
	"hsfsim/internal/statevec"
)

// Method selects the simulation algorithm.
type Method int

// Simulation methods.
const (
	// Schrodinger performs full statevector simulation.
	Schrodinger Method = iota
	// StandardHSF cuts every crossing gate separately (state of the art).
	StandardHSF
	// JointHSF groups crossing gates into blocks and cuts them jointly
	// (the paper's proposed method).
	JointHSF
)

func (m Method) String() string {
	switch m {
	case Schrodinger:
		return "schrodinger"
	case StandardHSF:
		return "standard-hsf"
	case JointHSF:
		return "joint-hsf"
	default:
		return "unknown"
	}
}

// BlockStrategy mirrors the joint-cut grouping strategies of the planner.
type BlockStrategy = cut.Strategy

// Block strategies for JointHSF (ignored by the other methods).
const (
	// BlockCascade groups crossing two-qubit gates sharing an anchor qubit
	// (the paper's QAOA evaluation setting; default for JointHSF).
	BlockCascade = cut.StrategyCascade
	// BlockWindow grows fusion-style windows around crossing gates,
	// absorbing local gates (supremacy-style circuits, Fig. 3).
	BlockWindow = cut.StrategyWindow
)

// ErrTimeout is returned when a simulation exceeds Options.Timeout.
var ErrTimeout = hsf.ErrTimeout

// Options configures Simulate.
type Options struct {
	// Method selects the algorithm; the zero value is Schrodinger.
	Method Method
	// CutPos places the bipartition for the HSF methods: qubits 0..CutPos
	// form the lower half. Required (≥ 0) for StandardHSF/JointHSF; ignored
	// by Schrodinger.
	CutPos int
	// MaxAmplitudes limits the output to the first M amplitudes (paper
	// Table I computes 10^6). 0 means the full statevector.
	MaxAmplitudes int
	// Workers bounds path/apply parallelism; 0 uses all CPUs.
	Workers int
	// BlockStrategy selects the JointHSF grouping; the zero value picks
	// BlockCascade.
	BlockStrategy BlockStrategy
	// MaxBlockQubits caps joint-cut block sizes (0: library default).
	MaxBlockQubits int
	// FusionMaxQubits configures gate fusion (0: default, <0: disabled).
	FusionMaxQubits int
	// UseAnalyticCascades replaces numeric SVDs by analytic cascade
	// decompositions where the pattern matches (ablation; the paper's
	// evaluation runs numerically).
	UseAnalyticCascades bool
	// Tol is the Schmidt singular-value truncation tolerance (0: default).
	Tol float64
	// Timeout aborts HSF runs after this duration (0: none), as in the
	// paper's 1 h limit for standard HSF.
	Timeout time.Duration
	// UseDDEngine executes the HSF path tree on decision-diagram subcircuit
	// states instead of dense arrays (the authors' ref-[10] approach):
	// single-threaded, memory-compressing, structurally identical results.
	UseDDEngine bool
}

// Result reports the simulated amplitudes and run statistics.
type Result struct {
	// Amplitudes holds the first MaxAmplitudes entries of the statevector.
	Amplitudes []complex128
	// Method echoes the algorithm used.
	Method Method
	// NumPaths is the number of Feynman paths (1 for Schrodinger);
	// saturates at MaxUint64.
	NumPaths uint64
	// Log2Paths is log2(NumPaths) without saturation.
	Log2Paths float64
	// NumCuts, NumBlocks, NumSeparateCuts describe the plan (HSF only).
	NumCuts         int
	NumBlocks       int
	NumSeparateCuts int
	// PreprocessTime covers planning, Schmidt decompositions, and gate
	// fusion; SimTime covers the simulation itself — matching the two-line
	// rows of the paper's Table I.
	PreprocessTime time.Duration
	SimTime        time.Duration
}

// TotalTime returns preprocessing plus simulation time.
func (r *Result) TotalTime() time.Duration { return r.PreprocessTime + r.SimTime }

// Simulate runs the circuit with the selected method.
func Simulate(c *Circuit, opts Options) (*Result, error) {
	if c == nil {
		return nil, errors.New("hsfsim: nil circuit")
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("hsfsim: %w", err)
	}
	switch opts.Method {
	case Schrodinger:
		return runSchrodinger(c, opts)
	case StandardHSF, JointHSF:
		return runHSF(c, opts)
	default:
		return nil, fmt.Errorf("hsfsim: unknown method %d", opts.Method)
	}
}

func runSchrodinger(c *Circuit, opts Options) (*Result, error) {
	if c.NumQubits > 30 {
		return nil, fmt.Errorf("hsfsim: %d qubits exceed the Schrödinger memory budget (2^%d amplitudes)", c.NumQubits, c.NumQubits)
	}
	pre := time.Now()
	gates := c.Gates
	if opts.FusionMaxQubits >= 0 {
		maxQ := opts.FusionMaxQubits
		if maxQ == 0 {
			maxQ = fuse.DefaultMaxQubits
		}
		gates = fuse.Fuse(gates, maxQ)
	}
	preprocess := time.Since(pre)

	simStart := time.Now()
	s := statevec.NewState(c.NumQubits)
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = simStart.Add(opts.Timeout)
	}
	for i := range gates {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, ErrTimeout
		}
		s.ApplyGate(&gates[i])
	}
	amps := []complex128(s)
	if opts.MaxAmplitudes > 0 && opts.MaxAmplitudes < len(amps) {
		amps = amps[:opts.MaxAmplitudes]
	}
	return &Result{
		Amplitudes:     amps,
		Method:         Schrodinger,
		NumPaths:       1,
		PreprocessTime: preprocess,
		SimTime:        time.Since(simStart),
	}, nil
}

func runHSF(c *Circuit, opts Options) (*Result, error) {
	strategy := cut.StrategyNone
	if opts.Method == JointHSF {
		strategy = opts.BlockStrategy
		if strategy == cut.StrategyNone {
			strategy = cut.StrategyCascade
		}
	}
	pre := time.Now()
	plan, err := cut.BuildPlan(c, cut.Options{
		Partition:      cut.Partition{CutPos: opts.CutPos},
		Strategy:       strategy,
		MaxBlockQubits: opts.MaxBlockQubits,
		Tol:            opts.Tol,
		UseAnalytic:    opts.UseAnalyticCascades,
	})
	if err != nil {
		return nil, fmt.Errorf("hsfsim: %w", err)
	}
	preprocess := time.Since(pre)

	engineOpts := hsf.Options{
		MaxAmplitudes:   opts.MaxAmplitudes,
		Workers:         opts.Workers,
		FusionMaxQubits: opts.FusionMaxQubits,
		Timeout:         opts.Timeout,
	}
	var res *hsf.Result
	if opts.UseDDEngine {
		res, err = hsf.RunDD(plan, engineOpts)
	} else {
		res, err = hsf.Run(plan, engineOpts)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Amplitudes:      res.Amplitudes,
		Method:          opts.Method,
		NumPaths:        res.NumPaths,
		Log2Paths:       res.Log2Paths,
		NumCuts:         len(plan.Cuts),
		NumBlocks:       plan.NumBlocks(),
		NumSeparateCuts: plan.NumSeparateCuts(),
		PreprocessTime:  preprocess,
		SimTime:         res.Elapsed,
	}, nil
}

// PlanSummary re-exports the serializable cut-plan description.
type PlanSummary = cut.Summary

// Analyze builds the joint-cut plan for the circuit without simulating and
// returns its summary: path counts, blocks, per-cut ranks. Use it to decide
// whether an instance is HSF-friendly before committing to a run.
func Analyze(c *Circuit, cutPos int, strategy BlockStrategy, maxBlockQubits int) (*PlanSummary, error) {
	if strategy == cut.StrategyNone {
		strategy = cut.StrategyCascade
	}
	plan, err := cut.BuildPlan(c, cut.Options{
		Partition:      cut.Partition{CutPos: cutPos},
		Strategy:       strategy,
		MaxBlockQubits: maxBlockQubits,
	})
	if err != nil {
		return nil, fmt.Errorf("hsfsim: %w", err)
	}
	s := plan.Summarize()
	return &s, nil
}

// PathCounts reports, without simulating, the path counts of standard and
// joint cutting for the circuit and cut position — the quantity plotted in
// the paper's Fig. 3b.
func PathCounts(c *Circuit, cutPos int, strategy BlockStrategy, maxBlockQubits int) (standard, joint uint64, err error) {
	p := cut.Partition{CutPos: cutPos}
	std, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: cut.StrategyNone})
	if err != nil {
		return 0, 0, err
	}
	if strategy == cut.StrategyNone {
		strategy = cut.StrategyCascade
	}
	jnt, err := cut.BuildPlan(c, cut.Options{Partition: p, Strategy: strategy, MaxBlockQubits: maxBlockQubits})
	if err != nil {
		return 0, 0, err
	}
	standard, _ = std.NumPaths()
	joint, _ = jnt.NumPaths()
	return standard, joint, nil
}

// Circuit re-exports the circuit IR so users never import internal packages.
type Circuit = circuit.Circuit

// Gate re-exports the gate type.
type Gate = gate.Gate

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }
